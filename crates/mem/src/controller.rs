//! The memory controller: functional state plus per-command accounting.
//!
//! [`MainMemory`] owns the (sparse) array contents and executes the
//! extended-DDR command vocabulary of [`crate::commands`], charging time
//! and energy from the [`pinatubo_nvm`] parameter tables into
//! [`crate::stats::MemStats`].
//!
//! The controller is *serial*: commands execute one after another and time
//! adds up. That matches how the paper drives PIM operations (one extended
//! instruction stream through one DDR command bus); channel-level
//! parallelism for conventional CPU traffic is modelled by the baselines
//! where it matters.

use crate::address::RowAddr;
use crate::array::RowData;
use crate::commands::{MemCommand, PimConfig};
use crate::geometry::MemGeometry;
use crate::page::{PageId, PageTable, RowPage};
use crate::stats::MemStats;
use crate::MemError;
use pinatubo_nvm::energy::EnergyParams;
use pinatubo_nvm::fault::{CellHealth, CellId, EventKey, FaultModel, FaultState};
use pinatubo_nvm::lwl_driver::LwlDriverBank;
use pinatubo_nvm::resistance::Ohms;
use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode};
use pinatubo_nvm::technology::Technology;
use pinatubo_nvm::timing::TimingParams;
use pinatubo_nvm::write_driver::{WriteDriver, WriteSource};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Which analysis bounds the widest OR the protected sense path will issue
/// in a single multi-row activation. Wider requests are split into chunks
/// of at most this many rows and merged digitally in the row buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReliableFanIn {
    /// The worst-case interval margin analysis (the static
    /// [`CurrentSenseAmp::max_or_fan_in`] cap). No splitting below the cap.
    Margin,
    /// A Monte-Carlo yield sweep at construction time
    /// ([`CurrentSenseAmp::reliable_or_fan_in`]): the widest fan-in whose
    /// Gaussian-model error rate stays below `target_ber`.
    Yield {
        /// Acceptable sense-error rate per bit.
        target_ber: f64,
        /// Monte-Carlo trials per fan-in point.
        trials: u64,
        /// Seed for the sweep's sampling stream.
        seed: u64,
    },
    /// A fixed limit (conservative provisioning, or tests that need to
    /// exercise splitting deterministically). Clamped to the margin cap.
    Fixed(usize),
}

/// How stored rows are protected against corruption on the read path.
///
/// Both non-trivial modes keep per-row metadata computed from the
/// *intended* data at write time (the metadata store itself is modeled
/// reliable, as a real design would protect it with stronger coding) and
/// check it on every single-row read. They differ in what a mismatch can
/// do about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectionMode {
    /// No stored metadata, nothing checked: corruption is silent.
    None,
    /// One parity bit per 64-bit word. Detection only: any mismatch pays
    /// the re-calibrated retry ladder, and an even number of flips per
    /// word aliases the parity and escapes silently.
    Parity,
    /// A (72,64) Hamming SEC-DED check byte per 64-bit word
    /// ([`crate::secded`]; 12.5 % storage overhead, charged). Single-bit
    /// errors are corrected in place without touching the retry ladder;
    /// double-bit detections still fall through to it.
    SecDed,
}

/// Detection and recovery policy for the fault-injected memory.
///
/// With the default ([`ReliabilityConfig::off`]) nothing is checked: faults
/// (if any are modeled) corrupt results silently, which is exactly what the
/// error-rate sweeps want to measure. [`ReliabilityConfig::protected`]
/// enables the full detect/retry ladder the controller implements:
/// program-and-verify on writes, per-row parity on reads, duplicate sensing
/// with reference re-calibration on PIM activations, and proactive fan-in
/// splitting at the yield-analysis limit.
/// [`ReliabilityConfig::protected_secded`] upgrades the read-path rung to
/// in-place SEC-DED correction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Verify every charged write (and setup poke) against the intended
    /// data, retrying failed programming pulses up to
    /// `max_write_retries` times before reporting
    /// [`MemError::UncorrectableWrite`].
    pub verify_writes: bool,
    /// Per-row protection metadata kept alongside writes and checked on
    /// every single-row read (see [`ProtectionMode`]); uncorrectable
    /// mismatches trigger re-calibrated re-reads and eventually
    /// [`MemError::UncorrectableRead`].
    pub protection: ProtectionMode,
    /// Sense every PIM activation twice and require agreement; disagreement
    /// triggers re-calibrated retries and eventually
    /// [`MemError::SenseUnstable`] (the caller's cue to fall back to
    /// read-modify-write).
    pub duplicate_sense: bool,
    /// Extra programming pulses after the first failed verify.
    pub max_write_retries: u32,
    /// Re-calibrated re-senses after a detected read/sense error.
    pub max_sense_retries: u32,
    /// The fan-in limit the protected sense path enforces by splitting.
    pub reliable_fan_in: ReliableFanIn,
}

impl ReliabilityConfig {
    /// No detection, no recovery (the default).
    #[must_use]
    pub fn off() -> Self {
        ReliabilityConfig {
            verify_writes: false,
            protection: ProtectionMode::None,
            duplicate_sense: false,
            max_write_retries: 0,
            max_sense_retries: 0,
            reliable_fan_in: ReliableFanIn::Margin,
        }
    }

    /// The full recovery ladder with the paper-calibrated yield limit.
    #[must_use]
    pub fn protected() -> Self {
        ReliabilityConfig {
            verify_writes: true,
            protection: ProtectionMode::Parity,
            duplicate_sense: true,
            max_write_retries: 3,
            max_sense_retries: 3,
            reliable_fan_in: ReliableFanIn::Yield {
                target_ber: 1e-3,
                trials: 2000,
                seed: 0x5EED,
            },
        }
    }

    /// [`ReliabilityConfig::protected`] with the read-path rung upgraded
    /// from parity detection to SEC-DED correction.
    #[must_use]
    pub fn protected_secded() -> Self {
        ReliabilityConfig {
            protection: ProtectionMode::SecDed,
            ..ReliabilityConfig::protected()
        }
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig::off()
    }
}

/// Everything needed to instantiate a memory system.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Shape of the memory.
    pub geometry: MemGeometry,
    /// Cell technology.
    pub technology: Technology,
    /// Command timing table.
    pub timing: TimingParams,
    /// Command energy table.
    pub energy: EnergyParams,
    /// Record every command into an inspectable trace (tests, debugging).
    pub record_trace: bool,
    /// Open-page row-buffer policy: single-row reads that hit the
    /// currently open row of a subarray skip activation and precharge.
    /// Off by default (closed-page), matching the calibrated figures;
    /// multi-row PIM activations always close the page.
    pub open_page: bool,
    /// Deterministic fault injection into the resistive sense/write paths.
    /// [`FaultModel::none`] (the default) keeps the simulator bit-identical
    /// to a fault-free build; DRAM ignores the model (it has no current
    /// SA to inject into).
    pub fault_model: FaultModel,
    /// Detection/recovery policy (only meaningful with faults enabled).
    pub reliability: ReliabilityConfig,
    /// Route fault-injected senses and writes through the per-cell
    /// reference path instead of the word-packed fast path. The two are
    /// bit-identical for the same seed (pinned by cross-crate property
    /// tests); the reference path exists as the oracle and for debugging,
    /// at O(cols × fan-in) per event instead of O(words + fault sites).
    pub reference_fault_path: bool,
}

impl MemConfig {
    /// The paper's configuration: PCM cells, PCM/DDR3 timing, default
    /// geometry.
    #[must_use]
    pub fn pcm_default() -> Self {
        MemConfig {
            geometry: MemGeometry::pcm_default(),
            technology: Technology::pcm(),
            timing: TimingParams::pcm_ddr3_1600(),
            energy: EnergyParams::pcm(),
            record_trace: false,
            open_page: false,
            fault_model: FaultModel::none(),
            reliability: ReliabilityConfig::off(),
            reference_fault_path: false,
        }
    }

    /// A DDR3-1600 DRAM system with the same geometry (for baselines that
    /// need functional DRAM storage).
    #[must_use]
    pub fn dram_default() -> Self {
        MemConfig {
            geometry: MemGeometry::pcm_default(),
            technology: Technology::dram(),
            timing: TimingParams::ddr3_1600(),
            energy: EnergyParams::dram(),
            record_trace: false,
            open_page: false,
            fault_model: FaultModel::none(),
            reliability: ReliabilityConfig::off(),
            reference_fault_path: false,
        }
    }
}

/// The simulated main memory.
///
/// See the crate-level example for typical use. All mutating entry points
/// return [`MemError`] on geometry or circuit violations; the functional
/// state is only modified when the whole command succeeds.
#[derive(Debug)]
pub struct MainMemory {
    config: MemConfig,
    /// SA model; `None` for the charge-based DRAM pseudo-technology.
    sense_amp: Option<CurrentSenseAmp>,
    /// Cached result of the (static) sense-margin fan-in analysis.
    max_or_fan_in: usize,
    /// Sparse row storage as `Arc`-shared copy-on-write pages (see
    /// [`crate::page`]): channel shards, the session parent's mirror and
    /// snapshots share untouched pages for free; a shared page is
    /// deep-copied only on its first write, counted in
    /// [`MemStats::row_pages_copied`].
    rows: PageTable,
    /// Charged writes per row, for endurance analysis.
    wear: HashMap<RowAddr, u64>,
    /// Open-page state: the row currently latched in each subarray's row
    /// buffer (open-page policy only).
    open_rows: HashMap<crate::address::SubarrayId, u32>,
    /// Recent activation issue times per (channel, rank), oldest first
    /// (at most four kept), for the tRRD/tFAW inter-activation gate.
    act_history: HashMap<(u32, u32), Vec<f64>>,
    /// Fault-injection state, one sequential draw stream per channel
    /// (keyed by channel index) so channel shards consume deterministic,
    /// independent streams no matter how execution interleaves. Empty when
    /// the model is [`FaultModel::none`] (or the technology has no current
    /// SA), in which case every fault/recovery branch is skipped entirely.
    fault: HashMap<u32, FaultState>,
    /// Per-row fault-site cache for the packed fault paths. Sites are a
    /// pure function of `(fault_model, row_key, writes, cols)`, so entries
    /// need no invalidation beyond a wear or width mismatch, and shards
    /// may start with an empty cache without changing any result.
    fault_sites: HashMap<u64, CachedRowSites>,
    /// The fan-in limit enforced by the protected sense path (resolved
    /// once at construction from `config.reliability.reliable_fan_in`).
    reliable_or_fan_in: usize,
    /// Per-row protection metadata, keyed by row, computed from the
    /// *intended* data on every write: packed parity words (one bit per
    /// 64-bit data word) under [`ProtectionMode::Parity`], packed SEC-DED
    /// check bytes (one per data word) under [`ProtectionMode::SecDed`].
    /// Stored as `(intended_len_bits, metadata_words)`; empty under
    /// [`ProtectionMode::None`].
    protect: HashMap<RowAddr, (u64, Vec<u64>)>,
    mode: PimConfig,
    stats: MemStats,
    trace: Vec<MemCommand>,
    /// Addresses touched since the last [`MainMemory::take_dirty_state`]
    /// (or shard-lifecycle reset), so a session sync can move only what
    /// changed instead of every row a channel owns.
    dirty: DirtyLog,
}

/// One cached [`FaultModel::row_fault_sites`] result: the ascending
/// `(bit, held value)` fault sites of a row at a given wear level, over
/// the first `cols` columns.
#[derive(Debug, Clone)]
struct CachedRowSites {
    writes: u64,
    cols: u64,
    sites: Vec<(u64, bool)>,
}

/// Whole-row verdict of one SEC-DED syndrome pass
/// ([`MainMemory::secded_scan`]).
#[derive(Debug, PartialEq, Eq)]
enum SecdedScan {
    /// Every checkable word decoded clean.
    Clean,
    /// Some words carried single-bit errors, all corrected in place.
    Corrected {
        /// Data bits flipped back.
        bits: u64,
        /// Ascending indices of the corrected words (their divergence
        /// from the functional truth is repair, not silent corruption).
        words: Vec<usize>,
    },
    /// At least one word decoded as an uncorrectable double-bit error.
    Double,
}

/// Keys of the functional state mutated since the last drain. Maintained
/// by the store/wear/protection-metadata/open-page/fault mutation paths
/// themselves, so the log is exact regardless of which command touched
/// the state. Row writes are logged at page granularity: a delta ships
/// the whole (Arc'd) page, so finer tracking would buy nothing.
#[derive(Debug, Default)]
struct DirtyLog {
    pages: HashSet<PageId>,
    wear: HashSet<RowAddr>,
    protect: HashSet<RowAddr>,
    open: HashSet<crate::address::SubarrayId>,
    fault: HashSet<u32>,
    /// Channels whose tRRD/tFAW activation history advanced. Shipped as
    /// *relative* offsets (entry − local now) so receivers on a different
    /// clock can re-anchor them — the scheduler's command-granularity
    /// interleaving needs the window to survive a sync.
    acts: HashSet<u32>,
}

impl DirtyLog {
    /// Forgets everything logged for `channel` — `split_channel` moves
    /// the state itself out wholesale, after which stale entries would
    /// only re-ship state the parent no longer owns.
    fn discard_channel(&mut self, channel: u32) {
        self.pages.retain(|id| id.channel() != channel);
        self.wear.retain(|a| a.channel != channel);
        self.protect.retain(|a| a.channel != channel);
        self.open.retain(|id| id.channel != channel);
        self.fault.remove(&channel);
        self.acts.remove(&channel);
    }
}

/// The state one channel's owner must ship to bring a stale mirror up to
/// date: exactly the row pages, wear counters, protection metadata
/// (parity words or SEC-DED check bytes), open-page entries and
/// fault-stream position touched since the last drain.
/// Produced by [`MainMemory::take_dirty_state`], consumed by
/// [`MainMemory::apply_delta`]. Dirty pages travel as `Arc` references —
/// O(1) each, no row data cloned — and the receiver installs them
/// wholesale, re-sharing the page between both sides. Carries no
/// statistics or trace — those are moved separately so a delta can also
/// flow *away* from the ledger owner (e.g. a unified barrier op pushing
/// its writes back to shards).
#[derive(Debug)]
pub struct ChannelDelta {
    channel: u32,
    pages: Vec<(PageId, Arc<RowPage>)>,
    wear: Vec<(RowAddr, u64)>,
    protect: Vec<(RowAddr, (u64, Vec<u64>))>,
    open: Vec<(crate::address::SubarrayId, Option<u32>)>,
    fault: Option<FaultState>,
    /// Per-rank activation issue times as *relative* offsets from the
    /// sender's clock at drain time (entry − sender now, hence ≤ 0): the
    /// receiver re-anchors them at its own clock, so tRRD/tFAW state
    /// survives a sync without ever shipping an absolute timestamp
    /// (ascending rank order for determinism).
    act_history: Vec<(u32, Vec<f64>)>,
}

impl ChannelDelta {
    fn empty(channel: u32) -> Self {
        ChannelDelta {
            channel,
            pages: Vec::new(),
            wear: Vec::new(),
            protect: Vec::new(),
            open: Vec::new(),
            fault: None,
            act_history: Vec::new(),
        }
    }

    /// The channel whose state this delta carries.
    #[must_use]
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// Whether the delta carries no state at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
            && self.wear.is_empty()
            && self.protect.is_empty()
            && self.open.is_empty()
            && self.fault.is_none()
            && self.act_history.is_empty()
    }
}

/// Moves the entries of `map` whose key matches `pred` into a new map.
fn drain_matching<K, V>(map: &mut HashMap<K, V>, pred: impl Fn(&K) -> bool) -> HashMap<K, V>
where
    K: Eq + std::hash::Hash + Copy,
{
    let keys: Vec<K> = map.keys().filter(|k| pred(k)).copied().collect();
    keys.into_iter()
        .filter_map(|k| map.remove(&k).map(|v| (k, v)))
        .collect()
}

/// Copies the entries of `map` whose key matches `pred` into a new map.
fn clone_matching<K, V>(map: &HashMap<K, V>, pred: impl Fn(&K) -> bool) -> HashMap<K, V>
where
    K: Eq + std::hash::Hash + Copy,
    V: Clone,
{
    map.iter()
        .filter(|(k, _)| pred(k))
        .map(|(&k, v)| (k, v.clone()))
        .collect()
}

/// Ascending-key snapshot of the entries of `map` whose key matches
/// `pred` — the one way `HashMap` state is ever iterated for
/// deterministic output (digests, delta drains), so the sort lives here
/// instead of at every call site.
fn sorted_matching<K, V>(map: &HashMap<K, V>, pred: impl Fn(&K) -> bool) -> Vec<(K, &V)>
where
    K: Eq + std::hash::Hash + Copy + Ord,
{
    let mut entries: Vec<(K, &V)> = map
        .iter()
        .filter(|(k, _)| pred(k))
        .map(|(&k, v)| (k, v))
        .collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    entries
}

/// Consumes a dirty-key set into an ascending, deterministic drain order.
fn sorted_keys<K: Ord>(set: HashSet<K>) -> Vec<K> {
    let mut keys: Vec<K> = set.into_iter().collect();
    keys.sort_unstable();
    keys
}

impl MainMemory {
    /// Builds a memory from a configuration.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        let sense_amp = config
            .technology
            .kind()
            .is_resistive()
            .then(|| CurrentSenseAmp::new(&config.technology));
        let max_or_fan_in = sense_amp.as_ref().map_or(1, CurrentSenseAmp::max_or_fan_in);
        let mut fault = HashMap::new();
        if !config.fault_model.is_none() && sense_amp.is_some() {
            for channel in 0..config.geometry.channels {
                fault.insert(
                    channel,
                    FaultState::for_channel(config.fault_model, channel),
                );
            }
        }
        let reliable_or_fan_in = match config.reliability.reliable_fan_in {
            ReliableFanIn::Margin => max_or_fan_in,
            ReliableFanIn::Yield {
                target_ber,
                trials,
                seed,
            } => sense_amp
                .as_ref()
                .and_then(|sa| sa.reliable_or_fan_in(target_ber, trials, seed).ok())
                .unwrap_or(max_or_fan_in),
            ReliableFanIn::Fixed(limit) => limit.min(max_or_fan_in),
        }
        .max(1);
        MainMemory {
            config,
            sense_amp,
            max_or_fan_in,
            rows: PageTable::default(),
            wear: HashMap::new(),
            open_rows: HashMap::new(),
            act_history: HashMap::new(),
            fault,
            fault_sites: HashMap::new(),
            reliable_or_fan_in,
            protect: HashMap::new(),
            mode: PimConfig::Off,
            stats: MemStats::new(),
            trace: Vec::new(),
            dirty: DirtyLog::default(),
        }
    }

    /// The configuration this memory was built with.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// The geometry (shorthand for `config().geometry`).
    #[must_use]
    pub fn geometry(&self) -> &MemGeometry {
        &self.config.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets the statistics (not the contents) and returns the old tally.
    /// The activation history is cleared too — its issue times are on the
    /// clock that just restarted at zero.
    pub fn take_stats(&mut self) -> MemStats {
        self.act_history.clear();
        std::mem::take(&mut self.stats)
    }

    /// The recorded command trace (empty unless `record_trace` is set).
    #[must_use]
    pub fn trace(&self) -> &[MemCommand] {
        &self.trace
    }

    /// The current PIM mode-register value.
    #[must_use]
    pub fn pim_config(&self) -> PimConfig {
        self.mode
    }

    /// Largest OR fan-in this memory's SAs support (1 for DRAM). The
    /// margin analysis is static per technology, so the value is computed
    /// once at construction.
    #[must_use]
    pub fn max_or_fan_in(&self) -> usize {
        self.max_or_fan_in
    }

    /// Largest OR fan-in the *protected* sense path will issue in one
    /// activation (see [`ReliableFanIn`]); wider requests are split.
    /// Always `<=` [`MainMemory::max_or_fan_in`].
    #[must_use]
    pub fn reliable_or_fan_in(&self) -> usize {
        self.reliable_or_fan_in
    }

    /// Whether fault injection is active (a non-none model on a resistive
    /// technology).
    #[must_use]
    pub fn fault_injection_active(&self) -> bool {
        !self.fault.is_empty()
    }

    /// Sets the PIM mode register, charging a mode-register-set command.
    /// Setting the already-current mode is free (the driver library caches
    /// the MR value, §5).
    pub fn set_pim_config(&mut self, cfg: PimConfig) {
        if cfg == self.mode {
            return;
        }
        self.mode = cfg;
        self.stats.time_ns += self.config.timing.t_mrs_ns;
        self.stats.time.mrs_ns += self.config.timing.t_mrs_ns;
        self.stats.events.mode_sets += 1;
        self.record(MemCommand::ModeRegisterSet(cfg));
    }

    /// Forces the PIM mode register without charging anything. Used by the
    /// sharded batch executor to prime a channel shard to the mode the
    /// serial command stream would have left behind, so the shard's own
    /// [`MainMemory::set_pim_config`] charges exactly the MRS commands the
    /// serial execution would have.
    pub fn preload_pim_config(&mut self, cfg: PimConfig) {
        self.mode = cfg;
    }

    /// Splits off everything `channel` owns into an independent
    /// [`MainMemory`] shard: the channel's rows, wear, protection
    /// metadata, open-page state and fault-injection stream move to the
    /// shard; configuration
    /// and the cached fan-in analyses are copied (never re-derived — the
    /// yield sweep is a Monte-Carlo run). The shard starts with zeroed
    /// statistics and the parent's current PIM mode; merge it back with
    /// [`MainMemory::absorb`].
    ///
    /// The channel's tRRD/tFAW activation history moves with the shard as
    /// *relative* offsets: each issue time is rebased by the parent's
    /// clock at the split (entry − parent now, hence ≤ 0) so the shard —
    /// whose clock starts at zero — sees the same "how long ago" the
    /// serial stream would. Carrying absolute times instead would
    /// manufacture stalls out of thin air; dropping the history (as this
    /// method once did) would let a shard's first activation dodge a
    /// window the serial stream still honours under tight parameters.
    ///
    /// Channels draw from independent fault streams (see
    /// [`FaultState::for_channel`]), so executing on shards consumes
    /// exactly the draws serial execution would, regardless of worker
    /// interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is outside the geometry.
    #[must_use]
    pub fn split_channel(&mut self, channel: u32) -> MainMemory {
        self.assert_channel_in_geometry(channel);
        let mut shard = self.shard_skeleton();
        shard.rows = self.rows.drain_channel(channel);
        shard.wear = drain_matching(&mut self.wear, |a| a.channel == channel);
        shard.protect = drain_matching(&mut self.protect, |a| a.channel == channel);
        shard.open_rows = drain_matching(&mut self.open_rows, |id| id.channel == channel);
        let now = self.stats.time_ns;
        for (key, hist) in drain_matching(&mut self.act_history, |&(ch, _)| ch == channel) {
            shard
                .act_history
                .insert(key, hist.iter().map(|&t| t - now).collect());
        }
        if let Some(state) = self.fault.remove(&channel) {
            shard.fault.insert(channel, state);
        }
        self.dirty.discard_channel(channel);
        shard
    }

    /// Shares everything `channel` owns into an independent worker shard,
    /// *keeping* this memory's copy in place as a stale mirror — the
    /// persistent-pool counterpart of [`MainMemory::split_channel`]. Row
    /// pages are shared by reference (one `Arc` bump per page, zero row
    /// copies — see [`crate::page`]); either side deep-copies a page only
    /// on its first write to it. The shard owner brings the mirror back
    /// up to date by shipping [`ChannelDelta`]s (see
    /// [`MainMemory::take_dirty_state`]) instead of moving the whole
    /// channel per batch, which makes both the clone and a sync cost
    /// O(touched state).
    ///
    /// Undrained dirty state the parent still holds for the channel is
    /// *retained in the parent's log*, not discarded: it describes state
    /// the parent holds current (the clone shares it by reference), so
    /// the parent's next [`MainMemory::take_dirty_state`] still ships it
    /// to whoever consumes the parent's deltas. The shard starts with an
    /// empty log — at the instant of cloning it is in sync with the
    /// parent, so its deltas need to carry only its own writes.
    ///
    /// Clock scoping is identical to `split_channel`: the channel's
    /// tRRD/tFAW activation history moves to the shard as relative
    /// offsets (entry − parent now) and is dropped on this side — the
    /// shard is the channel's writer now, and its sync deltas carry the
    /// advanced history back. The shard starts a fresh clock, zeroed
    /// statistics and the parent's current PIM mode. The parent's fault
    /// stream for the channel is *retained* (unlike `split_channel`) so
    /// barrier operations on the unified memory can keep drawing; the
    /// sync protocol replaces it with the shard's advanced stream before
    /// any such draw.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is outside the geometry.
    #[must_use]
    pub fn clone_channel(&mut self, channel: u32) -> MainMemory {
        self.assert_channel_in_geometry(channel);
        let mut shard = self.shard_skeleton();
        shard.rows = self.rows.share_channel(channel);
        shard.wear = clone_matching(&self.wear, |a| a.channel == channel);
        shard.protect = clone_matching(&self.protect, |a| a.channel == channel);
        shard.open_rows = clone_matching(&self.open_rows, |id| id.channel == channel);
        let now = self.stats.time_ns;
        for (key, hist) in drain_matching(&mut self.act_history, |&(ch, _)| ch == channel) {
            shard
                .act_history
                .insert(key, hist.iter().map(|&t| t - now).collect());
        }
        if let Some(state) = self.fault.get(&channel) {
            shard.fault.insert(channel, state.clone());
        }
        shard
    }

    fn assert_channel_in_geometry(&self, channel: u32) {
        assert!(
            channel < self.config.geometry.channels,
            "channel {channel} outside the {}-channel geometry",
            self.config.geometry.channels
        );
    }

    /// An empty shard sharing this memory's configuration, cached fan-in
    /// analyses and current PIM mode, with zeroed statistics.
    fn shard_skeleton(&self) -> MainMemory {
        MainMemory {
            config: self.config.clone(),
            sense_amp: self.sense_amp.clone(),
            max_or_fan_in: self.max_or_fan_in,
            rows: PageTable::default(),
            wear: HashMap::new(),
            open_rows: HashMap::new(),
            act_history: HashMap::new(),
            fault: HashMap::new(),
            fault_sites: HashMap::new(),
            reliable_or_fan_in: self.reliable_or_fan_in,
            protect: HashMap::new(),
            mode: self.mode,
            stats: MemStats::new(),
            trace: Vec::new(),
            dirty: DirtyLog::default(),
        }
    }

    /// Drains the dirty log into per-channel deltas carrying only the
    /// state touched since the last drain (ascending channel order, every
    /// touched channel present even if its delta is functionally empty).
    /// Statistics and the trace are *not* included — move them with
    /// [`MainMemory::take_stats`] / [`MainMemory::take_trace`] when the
    /// delta flows toward the ledger owner.
    pub fn take_dirty_state(&mut self) -> Vec<ChannelDelta> {
        let dirty = std::mem::take(&mut self.dirty);
        let mut by_channel: std::collections::BTreeMap<u32, ChannelDelta> =
            std::collections::BTreeMap::new();
        for id in sorted_keys(dirty.pages) {
            // One Arc bump per dirty page, never a row copy: the receiver
            // installs the page wholesale and both sides share it again.
            if let Some(page) = self.rows.page(id) {
                by_channel
                    .entry(id.channel())
                    .or_insert_with(|| ChannelDelta::empty(id.channel()))
                    .pages
                    .push((id, page));
            }
        }
        for addr in sorted_keys(dirty.wear) {
            if let Some(&writes) = self.wear.get(&addr) {
                by_channel
                    .entry(addr.channel)
                    .or_insert_with(|| ChannelDelta::empty(addr.channel))
                    .wear
                    .push((addr, writes));
            }
        }
        for addr in sorted_keys(dirty.protect) {
            if let Some(p) = self.protect.get(&addr) {
                by_channel
                    .entry(addr.channel)
                    .or_insert_with(|| ChannelDelta::empty(addr.channel))
                    .protect
                    .push((addr, p.clone()));
            }
        }
        for id in sorted_keys(dirty.open) {
            by_channel
                .entry(id.channel)
                .or_insert_with(|| ChannelDelta::empty(id.channel))
                .open
                .push((id, self.open_rows.get(&id).copied()));
        }
        for channel in dirty.fault {
            by_channel
                .entry(channel)
                .or_insert_with(|| ChannelDelta::empty(channel))
                .fault = self.fault.get(&channel).cloned();
        }
        let now = self.stats.time_ns;
        for channel in sorted_keys(dirty.acts) {
            let hist: Vec<(u32, Vec<f64>)> =
                sorted_matching(&self.act_history, |&(ch, _)| ch == channel)
                    .into_iter()
                    .map(|((_, rank), times)| (rank, times.iter().map(|&t| t - now).collect()))
                    .collect();
            if !hist.is_empty() {
                by_channel
                    .entry(channel)
                    .or_insert_with(|| ChannelDelta::empty(channel))
                    .act_history = hist;
            }
        }
        by_channel.into_values().collect()
    }

    /// Applies a delta produced by the owner of a channel's state: row
    /// pages install wholesale (re-sharing them between both sides), wear
    /// and protection-metadata entries overwrite, open-page entries set or
    /// clear, and the fault stream (when carried) replaces this side's
    /// position.
    /// Application is not logged as dirty — both sides agree on the
    /// shipped state afterwards, so re-shipping it would be pure waste.
    ///
    /// Installing whole pages is lossless because the delta protocol
    /// gives each channel a single writer between sync points: the shard
    /// owns it during execution, and the parent only writes at sync
    /// points — after folding the shard's deltas in — then immediately
    /// pushes its own writes back, so neither side can hold a newer row
    /// inside a page the other ships.
    pub fn apply_delta(&mut self, delta: ChannelDelta) {
        for (id, page) in delta.pages {
            self.rows.insert_page(id, page);
        }
        for (addr, writes) in delta.wear {
            self.wear.insert(addr, writes);
        }
        for (addr, meta) in delta.protect {
            self.protect.insert(addr, meta);
        }
        for (id, open) in delta.open {
            match open {
                Some(row) => {
                    self.open_rows.insert(id, row);
                }
                None => {
                    self.open_rows.remove(&id);
                }
            }
        }
        if let Some(state) = delta.fault {
            self.fault.insert(state.channel(), state);
        }
        let now = self.stats.time_ns;
        for (rank, rel) in delta.act_history {
            self.act_history.insert(
                (delta.channel, rank),
                rel.iter().map(|&r| now + r).collect(),
            );
        }
    }

    /// Asserts the `detected == corrected + uncorrectable` reliability
    /// ledger invariant. Merge paths ([`MainMemory::absorb`] callers, the
    /// session sync) check once per synchronization point instead of per
    /// absorbed shard — a merge must never manufacture or lose recovery
    /// events, but the invariant only needs to hold once all parts are in.
    ///
    /// # Panics
    ///
    /// Panics if the ledger is inconsistent.
    pub fn assert_ledger_consistent(&self) {
        assert!(
            self.stats.reliability.is_consistent(),
            "reliability ledger inconsistent: {:?}",
            self.stats.reliability
        );
    }

    /// Adds a shard's taken statistics into this memory's ledgers — the
    /// delta-sync counterpart of the implicit merge in
    /// [`MainMemory::absorb`].
    pub fn merge_stats(&mut self, delta: MemStats) {
        self.stats += delta;
    }

    /// Takes the recorded command trace, leaving it empty (always empty
    /// unless `record_trace` is set).
    pub fn take_trace(&mut self) -> Vec<MemCommand> {
        std::mem::take(&mut self.trace)
    }

    /// Appends commands a shard recorded to this memory's trace.
    pub fn append_trace(&mut self, mut commands: Vec<MemCommand>) {
        self.trace.append(&mut commands);
    }

    /// Order-independent digest of every piece of functional state
    /// `channel` owns (rows, wear, protection metadata, open pages,
    /// fault-stream
    /// position; activation history is clock-scoped and deliberately
    /// excluded). Two memories that digest equal respond identically to
    /// any command on the channel. Used by the session sync's debug
    /// assertion that a dirty-state delta reproduces a full split/absorb.
    #[must_use]
    pub fn channel_digest(&self, channel: u32) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        // Hash logical rows, not pages: two memories whose page tables
        // share differently (or page identical data differently after a
        // split vs a delta sync) must still digest equal.
        let mut rows = self.rows.channel_rows(channel);
        rows.sort_unstable_by_key(|&(key, _)| key);
        for ((id, row), data) in rows {
            (id, row).hash(&mut hasher);
            data.hash(&mut hasher);
        }
        sorted_matching(&self.wear, |a| a.channel == channel).hash(&mut hasher);
        sorted_matching(&self.protect, |a| a.channel == channel).hash(&mut hasher);
        sorted_matching(&self.open_rows, |id| id.channel == channel).hash(&mut hasher);
        self.fault
            .get(&channel)
            .map(FaultState::events_drawn)
            .hash(&mut hasher);
        hasher.finish()
    }

    /// Merges a shard produced by [`MainMemory::split_channel`] back:
    /// functional state, wear, protection metadata, fault streams and the
    /// recorded
    /// trace move back in, and the shard's statistics are added to this
    /// memory's ledgers. The shard's tRRD/tFAW activation history comes
    /// back rebased onto the parent's clock: an entry that was
    /// `shard_now − t` ago on the shard lands `parent_now_after − (shard_now
    /// − t)` here, so "how long ago" is preserved exactly across the
    /// round trip (the mirror of the relative rebase `split_channel`
    /// applies on the way out).
    ///
    /// The PIM mode register is left untouched: the batch executor primes
    /// it explicitly to keep MRS accounting identical to serial.
    ///
    /// Callers merging a whole sync point (the batch executor's absorb
    /// loop, the session sync) follow up with
    /// [`MainMemory::assert_ledger_consistent`] once per sync — per-shard
    /// checking would reject transiently-split ledgers for no gain.
    ///
    /// # Panics
    ///
    /// Panics if the shard's geometry disagrees.
    pub fn absorb(&mut self, shard: MainMemory) {
        assert!(
            shard.config.geometry == self.config.geometry,
            "absorbed shard must share the parent geometry"
        );
        self.rows.extend(shard.rows);
        self.wear.extend(shard.wear);
        self.protect.extend(shard.protect);
        self.open_rows.extend(shard.open_rows);
        self.fault.extend(shard.fault);
        self.trace.extend(shard.trace);
        let shard_now = shard.stats.time_ns;
        self.stats += shard.stats;
        let now = self.stats.time_ns;
        for (key, hist) in shard.act_history {
            self.act_history
                .insert(key, hist.iter().map(|&t| now - (shard_now - t)).collect());
        }
    }

    /// Direct (zero-cost) view of a row's contents — for assertions and
    /// result extraction, not for modelling traffic.
    #[must_use]
    pub fn peek_row(&self, addr: RowAddr) -> Option<&RowData> {
        self.rows.get(addr)
    }

    /// Direct (zero-cost) store into a row — for test setup / workload
    /// initialization where the loading traffic is not part of the
    /// measured experiment.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for invalid addresses and
    /// [`MemError::ColsExceedRow`] if `data` is wider than a row. With
    /// fault injection and `verify_writes` enabled, pokes that cannot land
    /// on the defective cells report [`MemError::UncorrectableWrite`] —
    /// setup data must really be in the array for later senses to mean
    /// anything.
    pub fn poke_row(&mut self, addr: RowAddr, data: &RowData) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols(data.len_bits())?;
        if self.fault.is_empty() {
            self.store(addr, data.clone());
            self.record_protection(addr, data);
            return Ok(());
        }
        // Setup DMA still goes through the physical write path (the image
        // must land on the real, possibly defective cells) but charges no
        // time/energy/wear; the retry loop models the DMA engine's own
        // program-and-verify.
        let verify = self.config.reliability.verify_writes;
        let mut attempt: u32 = 0;
        loop {
            let bad = self.store_physical(addr, data, WriteSource::Bus);
            self.stats.reliability.injected_write_faults += bad;
            if bad == 0 || !verify {
                self.record_protection(addr, data);
                self.note_unverified_store(addr, data, bad);
                if verify && attempt > 0 {
                    self.stats.reliability.corrected_errors += 1;
                }
                return Ok(());
            }
            if attempt == 0 {
                self.stats.reliability.detected_errors += 1;
            }
            if attempt >= self.config.reliability.max_write_retries {
                self.record_protection(addr, data);
                self.stats.reliability.uncorrectable_errors += 1;
                return Err(MemError::UncorrectableWrite {
                    addr,
                    bad_bits: bad,
                });
            }
            attempt += 1;
            self.stats.reliability.write_retries += 1;
        }
    }

    /// Multi-row activation followed by sensing under `mode`, producing
    /// the first `cols` bits of the combined row (paper §4.1,
    /// intra-subarray operations).
    ///
    /// All rows must belong to one subarray. The command charges one
    /// multi-activate (tRCD + command-rate extra activations), the
    /// necessary sense passes through the SA mux, and a precharge.
    ///
    /// # Errors
    ///
    /// * [`MemError::AddressOutOfRange`] / [`MemError::SubarrayMismatch`] /
    ///   [`MemError::ColsExceedRow`] / [`MemError::EmptyOperation`] on
    ///   geometry violations;
    /// * [`MemError::Nvm`] when the fan-in exceeds the SA margin or the
    ///   LWL latch capacity, or when this memory is DRAM (no current SA).
    pub fn multi_activate_sense(
        &mut self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
    ) -> Result<RowData, MemError> {
        self.multi_activate_sense_full(operands, mode, cols)
            .map(|(out, _)| out)
    }

    /// [`MainMemory::multi_activate_sense`], additionally returning the
    /// word-wise functional truth of the combine when faults are injected
    /// (`None` otherwise — the output *is* the truth), so the recovery
    /// ladder can tally silent corruption without recombining the operand
    /// rows.
    fn multi_activate_sense_full(
        &mut self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
    ) -> Result<(RowData, Option<RowData>), MemError> {
        self.validate_cols_nonzero(cols)?;
        self.require_sense_amp()?;
        // Fan-in check against the cached margin-analysis result (the
        // analysis itself is static per technology).
        if let SenseMode::Or { fan_in } = mode {
            if fan_in > self.max_or_fan_in {
                return Err(MemError::Nvm(pinatubo_nvm::NvmError::FanInExceeded {
                    requested: fan_in,
                    supported: self.max_or_fan_in,
                }));
            }
        }
        if operands.len() != mode.fan_in() {
            // A mismatch between open rows and reference configuration is a
            // driver bug; surface it as a degenerate fan-in.
            return Err(MemError::Nvm(pinatubo_nvm::NvmError::DegenerateFanIn));
        }
        let (&first, rest) = operands
            .split_first()
            .ok_or(MemError::Nvm(pinatubo_nvm::NvmError::DegenerateFanIn))?;
        self.validate_addr(first)?;
        for &other in rest {
            self.validate_addr(other)?;
            if !first.same_subarray(&other) {
                return Err(MemError::SubarrayMismatch { first, other });
            }
        }

        // Exercise the LWL latch protocol (Fig. 7): RESET, then accumulate.
        let mut lwl = LwlDriverBank::new(self.max_or_fan_in().max(2));
        lwl.reset();
        for op in operands {
            lwl.latch(op.row as usize)?;
        }

        // Functional combine, word-wise over the open rows. With fault
        // injection enabled the returned value is instead re-derived by
        // physical sensing; the word-wise result serves as the ground
        // truth for the injected-error tally and rides back to the caller.
        let truth = self.functional_combine(operands, mode, cols);
        let (out, truth) = if self.fault.is_empty() {
            (truth, None)
        } else {
            (
                self.sense_physical(operands, mode, cols, &truth),
                Some(truth),
            )
        };

        // Accounting.
        let g = &self.config.geometry;
        let passes = g.sense_passes(cols);
        let row_bits = g.logical_row_bits();
        let t = &self.config.timing;
        let e = &self.config.energy;
        let subarray = first.subarray_id();
        let single = operands.len() == 1;
        let page_hit =
            self.config.open_page && single && self.open_rows.get(&subarray) == Some(&first.row);
        if page_hit {
            // Row-buffer hit: the row is already on the sense amplifiers;
            // only the column accesses are paid.
            self.stats.time_ns += passes as f64 * t.t_cl_ns;
            self.stats.time.sense_ns += passes as f64 * t.t_cl_ns;
            self.stats.energy.sense_pj += e.sense_pj(cols);
            self.stats.events.row_buffer_hits += 1;
            self.stats.events.sense_passes += passes;
        } else {
            if self.config.open_page && self.open_rows.remove(&subarray).is_some() {
                self.dirty.open.insert(subarray);
                // Close the previously open row first.
                self.stats.time_ns += t.t_rp_ns;
                self.stats.time.precharge_ns += t.t_rp_ns;
                self.stats.energy.precharge_pj += e.precharge_pj(row_bits);
                self.stats.events.precharges += 1;
            }
            // tRRD/tFAW gate. The serial stream already spaces activations
            // by a full command (≥ tRCD ≥ tRRD at both presets), so this
            // only stalls under deliberately tight parameters; the batch
            // scheduler applies the same gate where bank lanes overlap.
            let history = self
                .act_history
                .entry((first.channel, first.rank))
                .or_default();
            let issue = t.earliest_activation_ns(history, self.stats.time_ns);
            let stall = issue - self.stats.time_ns;
            history.push(issue);
            if history.len() > 4 {
                history.remove(0);
            }
            self.dirty.acts.insert(first.channel);
            if stall > 0.0 {
                self.stats.time_ns += stall;
                self.stats.time.stall_ns += stall;
            }
            let act_ns = t.multi_activate_ns(operands.len());
            let sense_ns = passes as f64 * t.t_cl_ns;
            self.stats.time_ns += act_ns + sense_ns;
            self.stats.time.activate_ns += act_ns;
            self.stats.time.sense_ns += sense_ns;
            self.stats.energy.activate_pj += e.activate_pj(operands.len(), row_bits);
            self.stats.energy.sense_pj += e.sense_pj(cols);
            if single {
                self.stats.events.activates += 1;
            } else {
                self.stats.events.multi_activates += 1;
            }
            self.stats.events.rows_activated += operands.len() as u64;
            self.stats.events.sense_passes += passes;
            if self.config.open_page && single {
                // Leave the page open for a possible hit.
                self.dirty.open.insert(subarray);
                self.open_rows.insert(subarray, first.row);
            } else {
                // Closed-page policy, and multi-row PIM activations always
                // precharge so the next reference configuration starts
                // clean.
                self.stats.time_ns += t.t_rp_ns;
                self.stats.time.precharge_ns += t.t_rp_ns;
                self.stats.energy.precharge_pj += e.precharge_pj(row_bits);
                self.stats.events.precharges += 1;
            }
        }
        if self.config.record_trace {
            self.record(MemCommand::MultiActivate(operands.to_vec()));
            self.record(MemCommand::SensePass { mode, bits: cols });
            self.record(MemCommand::Precharge(first));
        }
        Ok((out, truth))
    }

    /// Reads the first `cols` bits of one row into the subarray's SA latch
    /// (a plain activate + sense, no data movement beyond the mats).
    ///
    /// With fault injection and [`ProtectionMode::Parity`], the sensed
    /// data is checked against the row's stored parity; mismatches trigger
    /// up to `max_sense_retries` re-calibrated re-reads (each charged one
    /// MRS plus a full re-activation) before giving up. Under
    /// [`ProtectionMode::SecDed`] single-bit errors are instead corrected
    /// in place from the syndrome — no retry is issued — and only
    /// double-bit detections pay the retry ladder.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::multi_activate_sense`], plus
    /// [`MemError::UncorrectableRead`] when the protection check never
    /// accepts a sense.
    pub fn activate_read(&mut self, addr: RowAddr, cols: u64) -> Result<RowData, MemError> {
        let operands = [addr];
        let (data, truth) = self.multi_activate_sense_full(&operands, SenseMode::Read, cols)?;
        if self.config.reliability.protection == ProtectionMode::SecDed {
            // The checker runs on every read, faults present or not — the
            // syndrome pass is part of the datapath, not of recovery.
            self.charge_ecc_check(cols);
        }
        let Some(truth) = truth else {
            return Ok(data);
        };
        if self.config.reliability.protection == ProtectionMode::SecDed {
            return self.secded_read(addr, cols, data, &truth);
        }
        if self.config.reliability.protection != ProtectionMode::Parity
            || self.parity_matches(addr, &data)
        {
            self.note_accepted(&truth, &data);
            return Ok(data);
        }
        self.stats.reliability.detected_errors += 1;
        for _ in 0..self.config.reliability.max_sense_retries {
            self.stats.reliability.sense_retries += 1;
            self.charge_recalibration();
            let again = self.multi_activate_sense(&operands, SenseMode::Read, cols)?;
            if self.parity_matches(addr, &again) {
                self.stats.reliability.corrected_errors += 1;
                self.note_accepted(&truth, &again);
                return Ok(again);
            }
        }
        self.stats.reliability.uncorrectable_errors += 1;
        Err(MemError::UncorrectableRead { addr })
    }

    /// The SEC-DED read path: syndrome-check (and correct) the sensed
    /// data against the row's stored check bytes. Single-bit-per-word
    /// errors are fixed in place without any retry-ladder involvement; a
    /// double-bit word sends the whole read through the re-calibrated
    /// retry loop (a *transient* double may sense clean next time), and
    /// only a persistently uncorrectable row surfaces as an error.
    fn secded_read(
        &mut self,
        addr: RowAddr,
        cols: u64,
        mut data: RowData,
        truth: &RowData,
    ) -> Result<RowData, MemError> {
        match self.secded_scan(addr, &mut data) {
            SecdedScan::Clean => {
                self.note_accepted(truth, &data);
                Ok(data)
            }
            SecdedScan::Corrected { bits, words } => {
                self.stats.reliability.detected_errors += 1;
                self.stats.reliability.corrected_errors += 1;
                self.stats.reliability.ecc_corrected_bits += bits;
                self.note_accepted_outside(truth, &data, &words);
                Ok(data)
            }
            SecdedScan::Double => {
                self.stats.reliability.detected_errors += 1;
                self.stats.reliability.ecc_detected_double += 1;
                for _ in 0..self.config.reliability.max_sense_retries {
                    self.stats.reliability.sense_retries += 1;
                    self.charge_recalibration();
                    let operands = [addr];
                    let mut again = self.multi_activate_sense(&operands, SenseMode::Read, cols)?;
                    self.charge_ecc_check(cols);
                    match self.secded_scan(addr, &mut again) {
                        SecdedScan::Clean => {
                            self.stats.reliability.corrected_errors += 1;
                            self.note_accepted(truth, &again);
                            return Ok(again);
                        }
                        SecdedScan::Corrected { bits, words } => {
                            self.stats.reliability.corrected_errors += 1;
                            self.stats.reliability.ecc_corrected_bits += bits;
                            self.note_accepted_outside(truth, &again, &words);
                            return Ok(again);
                        }
                        SecdedScan::Double => {}
                    }
                }
                self.stats.reliability.uncorrectable_errors += 1;
                Err(MemError::UncorrectableRead { addr })
            }
        }
    }

    /// [`MainMemory::multi_activate_sense`] wrapped in the recovery ladder
    /// (paper-faithful costs at every step):
    ///
    /// 1. **fan-in splitting** — ORs wider than
    ///    [`MainMemory::reliable_or_fan_in`] are proactively split into
    ///    chunks and merged digitally in the row buffer;
    /// 2. **duplicate sensing** — each activation is sensed twice
    ///    (`duplicate_sense`); disagreement means a transient fault was
    ///    caught in the act;
    /// 3. **bounded retry with re-calibration** — up to
    ///    `max_sense_retries` MRS-charged re-activations;
    /// 4. **explicit failure** — [`MemError::SenseUnstable`], the caller's
    ///    cue to fall back to the read-modify-write path.
    ///
    /// Without fault injection this is exactly
    /// [`MainMemory::multi_activate_sense`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::multi_activate_sense`], plus
    /// [`MemError::SenseUnstable`] as described.
    pub fn multi_activate_sense_protected(
        &mut self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
    ) -> Result<RowData, MemError> {
        if self.fault.is_empty() {
            return self.multi_activate_sense(operands, mode, cols);
        }
        if let SenseMode::Or { fan_in } = mode {
            if operands.len() == fan_in && fan_in > self.reliable_or_fan_in {
                return self.split_or(operands, cols);
            }
        }
        self.sense_stable(operands, mode, cols)
    }

    /// Records that the caller is re-running an unstable PIM sense through
    /// its read-modify-write fallback path.
    pub fn note_rmw_fallback(&mut self) {
        self.stats.reliability.rmw_fallbacks += 1;
    }

    /// Records that a detected error was resolved outside the controller
    /// (e.g. the engine's RMW fallback recomputed the result).
    pub fn note_recovery_resolved(&mut self) {
        self.stats.reliability.corrected_errors += 1;
    }

    /// Records that a detected error survived even the caller's fallback.
    pub fn note_recovery_failed(&mut self) {
        self.stats.reliability.uncorrectable_errors += 1;
    }

    /// Reads a row and moves it over the global data lines into the bank's
    /// global row buffer (first half of an inter-subarray operation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::activate_read`].
    pub fn read_row_to_buffer(&mut self, addr: RowAddr, cols: u64) -> Result<RowData, MemError> {
        let data = self.activate_read(addr, cols)?;
        self.charge_gdl(cols);
        Ok(data)
    }

    /// Reads a row into the chip I/O buffer: one GDL hop to the bank's
    /// global row buffer plus a second hop to the I/O buffer (the
    /// inter-bank operand path of Fig. 3a).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::activate_read`].
    pub fn read_row_to_io_buffer(&mut self, addr: RowAddr, cols: u64) -> Result<RowData, MemError> {
        let data = self.read_row_to_buffer(addr, cols)?;
        self.charge_gdl(cols);
        Ok(data)
    }

    /// Writes a row from the chip I/O buffer (two GDL hops + array write).
    ///
    /// # Errors
    ///
    /// Returns address/width errors as in [`MainMemory::poke_row`].
    pub fn write_row_from_io_buffer(
        &mut self,
        addr: RowAddr,
        data: RowData,
    ) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols_nonzero(data.len_bits())?;
        self.charge_gdl(data.len_bits());
        self.write_row_from_buffer(addr, data)
    }

    /// Reads a row all the way over the DDR bus (conventional read used by
    /// processor-centric execution).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::activate_read`].
    pub fn read_row_over_bus(&mut self, addr: RowAddr, cols: u64) -> Result<RowData, MemError> {
        let data = self.read_row_to_buffer(addr, cols)?;
        self.charge_bus(cols);
        Ok(data)
    }

    /// Charges the export of an operation result from the sense amplifiers
    /// to the host (GDL + DDR bus), without touching functional state —
    /// the cost a design *without* the Fig. 8a write-driver modification
    /// pays before it can write a result back conventionally.
    pub fn charge_result_export(&mut self, cols: u64) {
        self.charge_gdl(cols);
        self.charge_bus(cols);
    }

    /// Writes a row through the local write drivers, fed directly from the
    /// SA output (the in-place update path of Fig. 8a). No GDL or bus
    /// traffic.
    ///
    /// # Errors
    ///
    /// Returns address/width errors as in [`MainMemory::poke_row`].
    pub fn write_row_local(&mut self, addr: RowAddr, data: RowData) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols_nonzero(data.len_bits())?;
        self.program_row(addr, data, true)
    }

    /// Writes a row from the bank's global row buffer (GDL transfer + array
    /// write) — the tail of an inter-subarray/inter-bank operation.
    ///
    /// # Errors
    ///
    /// Returns address/width errors as in [`MainMemory::poke_row`].
    pub fn write_row_from_buffer(&mut self, addr: RowAddr, data: RowData) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols_nonzero(data.len_bits())?;
        self.charge_gdl(data.len_bits());
        self.program_row(addr, data, false)
    }

    /// Writes a row arriving over the DDR bus (conventional write).
    ///
    /// # Errors
    ///
    /// Returns address/width errors as in [`MainMemory::poke_row`].
    pub fn write_row_over_bus(&mut self, addr: RowAddr, data: RowData) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols_nonzero(data.len_bits())?;
        self.charge_bus(data.len_bits());
        self.write_row_from_buffer(addr, data)
    }

    /// A digital bitwise pass in a global row / IO buffer (paper Fig. 8b):
    /// combines `operand` into `acc` under `config`. Charges logic energy;
    /// the data movement feeding the logic is charged by the surrounding
    /// reads/writes, and the gates add no visible latency at GDL streaming
    /// rates.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyOperation`] for zero-length operands, and
    /// [`MemError::Nvm`] if `config` names a non-combining mode
    /// ([`PimConfig::Off`] / [`PimConfig::Inv`]).
    pub fn buffer_logic(
        &mut self,
        config: PimConfig,
        acc: &mut RowData,
        operand: &RowData,
        cols: u64,
    ) -> Result<(), MemError> {
        self.validate_cols_nonzero(cols)?;
        match config {
            PimConfig::Or => acc.or_assign(operand),
            PimConfig::And => acc.and_assign(operand),
            PimConfig::Xor => acc.xor_assign(operand),
            PimConfig::Off | PimConfig::Inv => {
                return Err(MemError::Nvm(pinatubo_nvm::NvmError::DegenerateFanIn))
            }
        }
        self.stats.energy.logic_pj += self.config.energy.logic_pj(cols);
        self.stats.events.logic_passes += 1;
        if self.config.record_trace {
            self.record(MemCommand::BufferLogic { bits: cols });
        }
        Ok(())
    }

    /// Write-wear summary over every charged row write (pokes are setup
    /// and do not count).
    #[must_use]
    pub fn wear_report(&self) -> crate::stats::WearReport {
        crate::stats::WearReport {
            total_row_writes: self.wear.values().sum(),
            rows_written: self.wear.len() as u64,
            max_row_writes: self.wear.values().copied().max().unwrap_or(0),
        }
    }

    /// Writes charged against one row so far.
    #[must_use]
    pub fn row_wear(&self, addr: RowAddr) -> u64 {
        self.wear.get(&addr).copied().unwrap_or(0)
    }

    /// Rows whose charged write count has reached `write_limit` — the
    /// candidates an endurance manager retires from the allocation pool.
    #[must_use]
    pub fn worn_rows(&self, write_limit: u64) -> Vec<RowAddr> {
        let mut rows: Vec<RowAddr> = self
            .wear
            .iter()
            .filter(|&(_, &writes)| writes >= write_limit)
            .map(|(&addr, _)| addr)
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Charged row writes summed per channel, indexed by channel number.
    /// The input a wear-aware placement policy needs: a channel whose
    /// total is far above its peers is being burned by hot data and
    /// should stop receiving new allocations until the others catch up.
    #[must_use]
    pub fn channel_wear_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.config.geometry.channels as usize];
        for (addr, &writes) in &self.wear {
            totals[addr.channel as usize] += writes;
        }
        totals
    }

    /// Inverts `data` through the SA's differential output while writing it
    /// back (INV support, §4.2). Charges one logic-free sense-side pass —
    /// the inversion is literally the other latch output, so only the
    /// write is extra and the caller performs it separately. Consumes the
    /// sensed buffer (the latch flips in place; no copy exists in silicon
    /// and none is made here).
    #[must_use]
    pub fn invert_in_sense_amp(&self, mut data: RowData) -> RowData {
        data.invert();
        data
    }

    // ---- internal helpers ----

    fn require_sense_amp(&self) -> Result<&CurrentSenseAmp, MemError> {
        self.sense_amp
            .as_ref()
            .ok_or(MemError::Nvm(pinatubo_nvm::NvmError::FanInExceeded {
                requested: 2,
                supported: 1,
            }))
    }

    fn validate_addr(&self, addr: RowAddr) -> Result<(), MemError> {
        if addr.is_valid(&self.config.geometry) {
            Ok(())
        } else {
            Err(MemError::AddressOutOfRange { addr })
        }
    }

    fn validate_cols(&self, cols: u64) -> Result<(), MemError> {
        let row_bits = self.config.geometry.logical_row_bits();
        if cols > row_bits {
            Err(MemError::ColsExceedRow { cols, row_bits })
        } else {
            Ok(())
        }
    }

    fn validate_cols_nonzero(&self, cols: u64) -> Result<(), MemError> {
        if cols == 0 {
            return Err(MemError::EmptyOperation);
        }
        self.validate_cols(cols)
    }

    /// Loads the first `cols` bits of a row (absent rows read as zeros —
    /// the simulator's initial array state).
    fn load(&self, addr: RowAddr, cols: u64) -> RowData {
        match self.peek_row(addr) {
            Some(row) => {
                let mut out = row.clone();
                out.resize(cols);
                out
            }
            None => RowData::zeros(cols),
        }
    }

    fn store(&mut self, addr: RowAddr, data: RowData) {
        // Rows are stored at their written length, not padded to the full
        // 2^19-bit row: reads zero-extend (`load`), which keeps the host
        // memory footprint proportional to the bits actually used. Takes
        // the buffer by value — the physical write path moves the image it
        // just built instead of cloning it. Writing into a page currently
        // shared with a mirror or snapshot deep-copies the page first
        // (copy-on-write); `row_pages_copied` counts those so tooling can
        // pin that session setup and sync stay O(touched state).
        let (page, _) = PageId::of(addr);
        self.dirty.pages.insert(page);
        if self.rows.insert(addr, data) {
            self.stats.row_pages_copied += 1;
        }
    }

    /// Word-wise combine over the operand rows — the functional ground
    /// truth of a multi-row sense. Only the accumulator is materialized;
    /// the remaining operands combine straight from their stored rows
    /// (whose tails are always masked, so rows wider than `cols` cannot
    /// leak bits past the accumulator's own tail mask and rows narrower
    /// than `cols` behave exactly like their zero-extension).
    fn functional_combine(&self, operands: &[RowAddr], mode: SenseMode, cols: u64) -> RowData {
        let (&first, rest) = operands.split_first().expect("operands are non-empty");
        let mut out = self.load(first, cols);
        for &other in rest {
            match (self.peek_row(other), mode) {
                (_, SenseMode::Read) => {}
                (Some(row), SenseMode::Or { .. }) => out.or_assign(row),
                (Some(row), SenseMode::And) => out.and_assign(row),
                (None, SenseMode::Or { .. }) => {}
                // An absent row reads as zeros, which annihilates an AND.
                (None, SenseMode::And) => out = RowData::zeros(cols),
            }
        }
        out
    }

    /// The ascending fault sites (stuck + endurance-dead cells) of one row
    /// over its first `cols` columns, cached per row. A cached entry is
    /// reused when its wear level matches and it covers at least `cols`
    /// columns; otherwise it is regenerated from the model.
    fn row_sites(
        &mut self,
        model: &FaultModel,
        row_key: u64,
        writes: u64,
        cols: u64,
    ) -> Vec<(u64, bool)> {
        match self.fault_sites.get(&row_key) {
            Some(c) if c.writes == writes && c.cols >= cols => {}
            _ => {
                let sites = model.row_fault_sites(row_key, writes, cols);
                self.fault_sites.insert(
                    row_key,
                    CachedRowSites {
                        writes,
                        cols,
                        sites,
                    },
                );
            }
        }
        self.fault_sites[&row_key]
            .sites
            .iter()
            .copied()
            .take_while(|&(bit, _)| bit < cols)
            .collect()
    }

    /// Physical sensing with faults injected, as one counter-keyed event:
    /// claims the channel's next [`EventKey`] and dispatches to the
    /// word-packed fast path (the default) or the per-cell reference path
    /// (`MemConfig::reference_fault_path`). The two are bit-identical for
    /// the same event. Bits differing from the word-wise `truth` are
    /// tallied as injected.
    fn sense_physical(
        &mut self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
        truth: &RowData,
    ) -> RowData {
        // All operands share a subarray (validated by the caller), so the
        // first one names the owning channel's draw stream.
        let channel = operands[0].channel;
        self.dirty.fault.insert(channel);
        let state = self
            .fault
            .get_mut(&channel)
            .expect("fault injection enabled");
        let model = *state.model();
        let event = state.next_event();
        let out = if self.config.reference_fault_path {
            self.sense_physical_reference(operands, mode, cols, &model, &event)
        } else {
            self.sense_physical_packed(operands, mode, cols, &model, &event)
        };
        self.stats.reliability.physical_senses += 1;
        self.stats.reliability.injected_bit_errors += out.count_diff(truth);
        out
    }

    /// The O(words + fault sites) sense path. The stored operand words are
    /// patched at their sparse fault sites so they hold the per-cell
    /// *effective* bits, then whole ones-count classes are classified as
    /// certainly-0 / certainly-1 through conservative bit-line resistance
    /// intervals (every residual / drift draw is bounded); only columns in
    /// a class straddling the reference are evaluated through the exact
    /// per-column model — the same evaluator the reference path uses, so
    /// even their floating-point rounding agrees. The transient-flip chain
    /// lands word-wise on top.
    fn sense_physical_packed(
        &mut self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
        model: &FaultModel,
        event: &EventKey,
    ) -> RowData {
        let mut patched: Vec<(u64, RowData)> = Vec::with_capacity(operands.len());
        for &a in operands {
            let key = a.to_linear(&self.config.geometry);
            let mut row = self.load(a, cols);
            for (bit, value) in self.row_sites(model, key, self.row_wear(a), cols) {
                row.set(bit, value);
            }
            patched.push((key, row));
        }
        let sa = self.sense_amp.as_ref().expect("resistive technology");
        let tech = &self.config.technology;
        let margin = sa.margin(mode);
        let global = model.event_global(tech, event);

        // Conservative per-class intervals: a cell storing `b` contributes
        // a resistance inside `[r_min(b), r_max(b)]` for *every* possible
        // residual and drift draw, so the bit line of a column with `k`
        // effective ones lies inside an interval depending only on `k`.
        let fan_in = patched.len();
        let (res_lo, res_hi) = model.residual_bounds(tech);
        let drift = 1.0 + model.drift_spread.max(0.0);
        let r_on = tech.cell_resistance(true).get() * global;
        let r_off = tech.cell_resistance(false).get() * global;
        let (r1_min, r1_max) = (r_on * res_lo, r_on * res_hi * drift);
        let (r0_min, r0_max) = (r_off * res_lo / drift, r_off * res_hi);
        let verdict = |ones: usize| -> Option<bool> {
            let zeros = (fan_in - ones) as f64;
            let ones = ones as f64;
            let g_min = ones / r1_max + zeros / r0_max;
            let g_max = ones / r1_min + zeros / r0_min;
            margin.classify_interval(Ohms::new(1.0 / g_max), Ohms::new(1.0 / g_min))
        };
        // `k1`: counts >= k1 certainly sense 1; counts < k0_excl certainly
        // sense 0; counts between are ambiguous. Derived from contiguous
        // runs at the extremes so no monotonicity assumption is needed.
        let mut k1 = fan_in + 1;
        for k in (0..=fan_in).rev() {
            if verdict(k) == Some(true) {
                k1 = k;
            } else {
                break;
            }
        }
        let mut k0_excl = 0;
        for k in 0..k1 {
            if verdict(k) == Some(false) {
                k0_excl = k + 1;
            } else {
                break;
            }
        }

        // Bit-sliced ones counting: ge[j] marks the columns whose patched
        // ones count is at least j, built word-wise over the operand rows.
        let nw = cols.div_ceil(64) as usize;
        let mut all = vec![u64::MAX; nw];
        if cols % 64 != 0 {
            all[nw - 1] = (1u64 << (cols % 64)) - 1;
        }
        let jcap = k1.min(fan_in);
        let mut ge: Vec<Vec<u64>> = Vec::with_capacity(jcap + 1);
        ge.push(all);
        ge.extend(std::iter::repeat_with(|| vec![0u64; nw]).take(jcap));
        for (i, (_, row)) in patched.iter().enumerate() {
            let rw = row.as_words();
            for j in (1..=jcap.min(i + 1)).rev() {
                let (lo, hi) = ge.split_at_mut(j);
                for ((cur, &prev), &word) in hi[0].iter_mut().zip(&lo[j - 1]).zip(rw) {
                    *cur |= prev & word;
                }
            }
        }
        let mut out = if k1 <= fan_in {
            ge[k1].clone()
        } else {
            vec![0u64; nw]
        };
        let ambiguous: Vec<u64> = if k0_excl < k1 && k0_excl <= fan_in {
            ge[k0_excl]
                .iter()
                .zip(&out)
                .map(|(&a, &b)| a & !b)
                .collect()
        } else {
            vec![0u64; nw]
        };

        // Exact evaluation of the (rare) ambiguous columns.
        let mut cells: Vec<(u64, bool)> = patched.iter().map(|&(key, _)| (key, false)).collect();
        for (w, &mask) in ambiguous.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let col = w as u64 * 64 + u64::from(m.trailing_zeros());
                m &= m - 1;
                for (slot, (_, row)) in cells.iter_mut().zip(&patched) {
                    slot.1 = row.get(col);
                }
                if sa.sense_column_physical(&margin, model, event, global, &cells, col) {
                    out[w] |= 1 << (col % 64);
                }
            }
        }

        // Transient latch flips, straight from the event's geometric chain.
        let p = model.transient_flip_probability(mode);
        for col in event.transient_flips(p, cols) {
            out[(col / 64) as usize] ^= 1 << (col % 64);
        }
        RowData::from_words(out, cols)
    }

    /// The per-cell reference sense path, the oracle the packed path is
    /// pinned against: every column resolves each operand cell's health by
    /// point query, runs the shared column evaluator, and walks the
    /// transient-flip chain in column lockstep. O(cols × fan-in).
    fn sense_physical_reference(
        &self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
        model: &FaultModel,
        event: &EventKey,
    ) -> RowData {
        let geometry = &self.config.geometry;
        let rows: Vec<(u64, RowData, u64)> = operands
            .iter()
            .map(|&a| (a.to_linear(geometry), self.load(a, cols), self.row_wear(a)))
            .collect();
        let sa = self.sense_amp.as_ref().expect("resistive technology");
        let tech = &self.config.technology;
        let margin = sa.margin(mode);
        let global = model.event_global(tech, event);
        let p = model.transient_flip_probability(mode);
        let mut flips = event.transient_flips(p, cols).peekable();
        let mut cells = Vec::with_capacity(rows.len());
        (0..cols)
            .map(|bit| {
                cells.clear();
                for (key, row, wear) in &rows {
                    let effective = match model.cell_health(CellId::new(*key, bit), *wear) {
                        CellHealth::StuckAt(v) => v,
                        CellHealth::Healthy => row.get(bit),
                    };
                    cells.push((*key, effective));
                }
                let sensed = sa.sense_column_physical(&margin, model, event, global, &cells, bit);
                sensed != flips.next_if(|&f| f == bit).is_some()
            })
            .collect()
    }

    /// Fires the write drivers against the real (possibly defective)
    /// cells as one counter-keyed write event, stores what the cells
    /// actually hold, and returns how many bits landed wrong. Dispatches
    /// to the packed or reference commit like [`MainMemory::sense_physical`].
    fn store_physical(&mut self, addr: RowAddr, data: &RowData, source: WriteSource) -> u64 {
        self.dirty.fault.insert(addr.channel);
        let state = self
            .fault
            .get_mut(&addr.channel)
            .expect("fault injection enabled");
        let model = *state.model();
        let event = state.next_event();
        let key = addr.to_linear(&self.config.geometry);
        // The pulse in flight stresses the cells on top of the wear
        // charged so far (row-level wear stands in for per-cell counts).
        let writes = self.row_wear(addr) + 1;
        let stored = if self.config.reference_fault_path {
            self.store_physical_reference(key, data, source, &model, &event, writes)
        } else {
            self.store_physical_packed(key, data, &model, &event, writes)
        };
        self.stats.reliability.physical_writes += 1;
        let bad = stored.count_diff(data);
        self.store(addr, stored);
        bad
    }

    /// Packed write commit: the whole row is `data XOR write-flip chain`,
    /// then the sparse fault sites override their columns (stuck cells
    /// ignore the pulse entirely). O(words + flips + fault sites).
    fn store_physical_packed(
        &mut self,
        key: u64,
        data: &RowData,
        model: &FaultModel,
        event: &EventKey,
        writes: u64,
    ) -> RowData {
        let bits = data.len_bits();
        let mut stored = data.clone();
        let words = stored.as_words_mut();
        for col in event.write_flips(model.write_flip, bits) {
            words[(col / 64) as usize] ^= 1 << (col % 64);
        }
        for (bit, value) in self.row_sites(model, key, writes, bits) {
            stored.set(bit, value);
        }
        stored
    }

    /// Per-cell reference write commit: each column drives its bit,
    /// resolves the cell's health by point query, and commits through
    /// [`pinatubo_nvm::write_driver::DrivenBit::committed`] with the same
    /// flip chain walked in column lockstep.
    fn store_physical_reference(
        &self,
        key: u64,
        data: &RowData,
        source: WriteSource,
        model: &FaultModel,
        event: &EventKey,
        writes: u64,
    ) -> RowData {
        let driver = WriteDriver::new(&self.config.technology);
        let bits = data.len_bits();
        let mut flips = event.write_flips(model.write_flip, bits).peekable();
        (0..bits)
            .map(|bit| {
                let flipped = flips.next_if(|&f| f == bit).is_some();
                let driven = driver.drive(source, data.get(bit));
                match model.cell_health(CellId::new(key, bit), writes) {
                    CellHealth::StuckAt(v) => v,
                    CellHealth::Healthy => driven.committed(flipped),
                }
            })
            .collect()
    }

    /// One charged write, with program-and-verify when faults and
    /// `verify_writes` are enabled: every attempt pays the full write
    /// (time, energy, wear) plus one read-back sense pass for the verify.
    /// Takes the buffer by value: the fault-free path stores the caller's
    /// image directly instead of cloning it.
    fn program_row(&mut self, addr: RowAddr, data: RowData, local: bool) -> Result<(), MemError> {
        let bits = data.len_bits();
        if self.fault.is_empty() {
            self.record_protection(addr, &data);
            self.charge_write(addr, bits, local);
            self.store(addr, data);
            return Ok(());
        }
        let verify = self.config.reliability.verify_writes;
        let source = if local {
            WriteSource::SenseAmp
        } else {
            WriteSource::Bus
        };
        let mut attempt: u32 = 0;
        loop {
            let bad = self.store_physical(addr, &data, source);
            self.charge_write(addr, bits, local);
            self.stats.reliability.injected_write_faults += bad;
            if !verify {
                // Unverified: the protection metadata (of the intended
                // data) still flags — or, under SEC-DED, repairs — the
                // corruption at read time; with protection off, or when
                // the corruption aliases the code, the wrong bits are
                // silent.
                self.record_protection(addr, &data);
                self.note_unverified_store(addr, &data, bad);
                return Ok(());
            }
            self.charge_verify_pass(bits);
            if bad == 0 {
                self.record_protection(addr, &data);
                if attempt > 0 {
                    self.stats.reliability.corrected_errors += 1;
                }
                return Ok(());
            }
            if attempt == 0 {
                self.stats.reliability.detected_errors += 1;
            }
            if attempt >= self.config.reliability.max_write_retries {
                self.record_protection(addr, &data);
                self.stats.reliability.uncorrectable_errors += 1;
                return Err(MemError::UncorrectableWrite {
                    addr,
                    bad_bits: bad,
                });
            }
            attempt += 1;
            self.stats.reliability.write_retries += 1;
        }
    }

    /// Duplicate-sense ladder for one activation: sense, confirm with a
    /// second (sense-only) pass, retry with re-calibration on
    /// disagreement, surface [`MemError::SenseUnstable`] when the budget
    /// runs out.
    fn sense_stable(
        &mut self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
    ) -> Result<RowData, MemError> {
        let (first, truth) = self.multi_activate_sense_full(operands, mode, cols)?;
        let truth = truth.expect("the protected path only reaches here with faults injected");
        if !self.config.reliability.duplicate_sense {
            self.note_accepted(&truth, &first);
            return Ok(first);
        }
        if self.resense(operands, mode, cols, &truth) == first {
            self.note_accepted(&truth, &first);
            return Ok(first);
        }
        self.stats.reliability.detected_errors += 1;
        let retries = self.config.reliability.max_sense_retries;
        for _ in 0..retries {
            self.stats.reliability.sense_retries += 1;
            self.charge_recalibration();
            let again = self.multi_activate_sense(operands, mode, cols)?;
            if self.resense(operands, mode, cols, &truth) == again {
                self.stats.reliability.corrected_errors += 1;
                self.note_accepted(&truth, &again);
                return Ok(again);
            }
        }
        Err(MemError::SenseUnstable {
            addr: operands[0],
            retries,
        })
    }

    /// Splits an over-wide OR into reliable-width chunks, each run through
    /// the duplicate-sense ladder, merged digitally in the row buffer.
    fn split_or(&mut self, operands: &[RowAddr], cols: u64) -> Result<RowData, MemError> {
        self.stats.reliability.fan_in_splits += 1;
        let limit = self.reliable_or_fan_in.max(1);
        let mut acc: Option<RowData> = None;
        for chunk in operands.chunks(limit) {
            let mode = if chunk.len() >= 2 {
                SenseMode::or(chunk.len()).map_err(MemError::from)?
            } else {
                SenseMode::Read
            };
            let part = self.sense_stable(chunk, mode, cols)?;
            match &mut acc {
                None => acc = Some(part),
                Some(acc) => self.buffer_logic(PimConfig::Or, acc, &part, cols)?,
            }
        }
        Ok(acc.expect("operands are non-empty"))
    }

    /// A duplicate sense re-fires the SA strip while the rows stay open:
    /// the column passes and sense energy are paid again, the activation
    /// is not.
    fn resense(
        &mut self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
        truth: &RowData,
    ) -> RowData {
        self.charge_verify_pass(cols);
        self.sense_physical(operands, mode, cols, truth)
    }

    /// Tallies wrong bits in a result the recovery machinery accepted as
    /// correct — the silent-corruption metric. `truth` is the word-wise
    /// functional combine the sense already computed; nothing is re-read.
    fn note_accepted(&mut self, truth: &RowData, out: &RowData) {
        self.stats.reliability.silent_wrong_bits += out.count_diff(truth);
    }

    /// [`MainMemory::note_accepted`] restricted to the words *outside*
    /// `skip_words` (ascending indices). After a SEC-DED correction the
    /// corrected words match the intended data by construction — any
    /// divergence from the functional `truth` there is repaired storage
    /// corruption, not a silent escape — so only words the syndrome
    /// called clean can hide aliased wrong bits.
    fn note_accepted_outside(&mut self, truth: &RowData, out: &RowData, skip_words: &[usize]) {
        let diff: u64 = out
            .as_words()
            .iter()
            .zip(truth.as_words())
            .enumerate()
            .filter(|(w, _)| skip_words.binary_search(w).is_err())
            .map(|(_, (a, b))| u64::from((a ^ b).count_ones()))
            .sum();
        self.stats.reliability.silent_wrong_bits += diff;
    }

    /// One packed parity bit per 64-bit data word.
    fn parity_words(data: &RowData) -> Vec<u64> {
        let words = data.as_words();
        let mut out = vec![0u64; words.len().div_ceil(64)];
        for (i, w) in words.iter().enumerate() {
            if w.count_ones() & 1 == 1 {
                out[i / 64] |= 1 << (i % 64);
            }
        }
        out
    }

    /// One packed SEC-DED check byte per 64-bit data word: word `i`'s
    /// byte sits at byte `i % 8` of metadata word `i / 8`.
    fn secded_check_bytes(data: &RowData) -> Vec<u64> {
        let words = data.as_words();
        let mut out = vec![0u64; words.len().div_ceil(8)];
        for (i, &w) in words.iter().enumerate() {
            out[i / 8] |= u64::from(crate::secded::encode(w)) << ((i % 8) * 8);
        }
        out
    }

    /// Accounts the wrong bits an unverified (or verify-accepted-anyway)
    /// store left behind, by modeling what a later noise-free read would
    /// accept. With no protection every bad bit is silent. With parity,
    /// only corruption that *aliases* the per-word parity (an even number
    /// of flips inside each 64-bit word) can ever be accepted — exactly
    /// those bits are charged; anything else deterministically fails the
    /// read check and surfaces as an explicit error. With SEC-DED,
    /// single-bit words are corrected back to the intended data (nothing
    /// silent), a double-bit word makes the whole row fail explicitly at
    /// read time (nothing silent), and only ≥3-flip words that alias or
    /// miscorrect the code charge their residual wrong bits.
    fn note_unverified_store(&mut self, addr: RowAddr, intended: &RowData, bad: u64) {
        if bad == 0 {
            return;
        }
        let silent = match self.config.reliability.protection {
            ProtectionMode::None => Some(bad),
            ProtectionMode::Parity => self
                .peek_row(addr)
                .is_some_and(|actual| Self::parity_words(actual) == Self::parity_words(intended))
                .then_some(bad),
            ProtectionMode::SecDed => self
                .peek_row(addr)
                .and_then(|actual| Self::secded_escape_bits(intended, actual)),
        };
        if let Some(bits) = silent {
            self.stats.reliability.silent_wrong_bits += bits;
        }
    }

    /// The wrong bits a noise-free SEC-DED read of `actual` (decoded
    /// against the check bytes of `intended`) would silently accept, or
    /// `None` when some word decodes as a double-bit error — then the
    /// read deterministically fails explicit instead, and nothing is
    /// silent.
    fn secded_escape_bits(intended: &RowData, actual: &RowData) -> Option<u64> {
        let mut wrong = 0u64;
        for (&want, &have) in intended.as_words().iter().zip(actual.as_words()) {
            if want == have {
                continue;
            }
            let mut accepted = have;
            match crate::secded::decode(have, crate::secded::encode(want)) {
                crate::secded::Decode::Double => return None,
                verdict => {
                    let _ = crate::secded::correct(&mut accepted, verdict);
                }
            }
            wrong += u64::from((accepted ^ want).count_ones());
        }
        Some(wrong)
    }

    /// Stores the protection metadata of the *intended* data alongside a
    /// write (parity words or SEC-DED check bytes, see
    /// [`ProtectionMode`]), so a later read of cells that silently failed
    /// to program sees a syndrome. The metadata array itself is modeled
    /// as reliable (a real design would protect it with stronger coding).
    fn record_protection(&mut self, addr: RowAddr, data: &RowData) {
        let meta = match self.config.reliability.protection {
            ProtectionMode::None => return,
            ProtectionMode::Parity => Self::parity_words(data),
            ProtectionMode::SecDed => Self::secded_check_bytes(data),
        };
        self.dirty.protect.insert(addr);
        self.protect.insert(addr, (data.len_bits(), meta));
    }

    /// How many leading words of a sensed row are fully determined on
    /// both sides of a protection check: all stored words when the read
    /// covers the whole row (sensing zero-extends, matching the
    /// zero-padded stored tail), otherwise only the complete words read.
    fn checkable_words(stored_bits: u64, cols: u64) -> u64 {
        if cols >= stored_bits {
            stored_bits.div_ceil(64)
        } else {
            cols / 64
        }
    }

    /// Checks sensed data against the stored parity. Rows never written
    /// have no metadata and pass vacuously.
    fn parity_matches(&self, addr: RowAddr, data: &RowData) -> bool {
        let Some((stored_bits, stored_parity)) = self.protect.get(&addr) else {
            return true;
        };
        let sensed = Self::parity_words(data);
        let checkable = Self::checkable_words(*stored_bits, data.len_bits());
        let bit = |v: &[u64], w: u64| v.get((w / 64) as usize).map_or(0, |x| x >> (w % 64) & 1);
        (0..checkable).all(|w| bit(&sensed, w) == bit(stored_parity, w))
    }

    /// Syndrome-checks (and corrects) sensed data in place against the
    /// row's stored SEC-DED check bytes. Any word decoding as a
    /// double-bit error fails the whole row — corrections applied to
    /// earlier words are irrelevant then, the caller discards the buffer
    /// and re-senses. Rows never written have no metadata and pass
    /// vacuously. A corrected bit beyond the sensed width (only reachable
    /// through a ≥3-flip miscorrection naming a zero-padded tail column)
    /// is a no-op on the nonexistent column, exactly as the hardware's
    /// column mux would treat it.
    fn secded_scan(&self, addr: RowAddr, data: &mut RowData) -> SecdedScan {
        let Some((stored_bits, check_bytes)) = self.protect.get(&addr) else {
            return SecdedScan::Clean;
        };
        let cols = data.len_bits();
        let checkable = Self::checkable_words(*stored_bits, cols) as usize;
        let mut bits = 0u64;
        let mut corrected = Vec::new();
        let words = data.as_words_mut();
        for (w, word) in words.iter_mut().enumerate().take(checkable) {
            let check = (check_bytes.get(w / 8).copied().unwrap_or(0) >> ((w % 8) * 8)) as u8;
            match crate::secded::decode(*word, check) {
                crate::secded::Decode::Clean => {}
                crate::secded::Decode::Double => return SecdedScan::Double,
                crate::secded::Decode::Single(bit) => {
                    if let Some(bit) = bit {
                        if (w as u64) * 64 + u64::from(bit) < cols {
                            *word ^= 1u64 << bit;
                            bits += 1;
                        }
                    }
                    corrected.push(w);
                }
            }
        }
        if corrected.is_empty() {
            SecdedScan::Clean
        } else {
            SecdedScan::Corrected {
                bits,
                words: corrected,
            }
        }
    }

    /// One read-back / duplicate sense: the column passes through the SA
    /// mux plus sense energy, no activation or precharge.
    fn charge_verify_pass(&mut self, bits: u64) {
        let passes = self.config.geometry.sense_passes(bits);
        let t = passes as f64 * self.config.timing.t_cl_ns;
        self.stats.time_ns += t;
        self.stats.time.sense_ns += t;
        self.stats.energy.sense_pj += self.config.energy.sense_pj(bits);
        self.stats.events.sense_passes += passes;
    }

    /// Re-calibrating the sense reference re-programs the mode register:
    /// one MRS-class command.
    fn charge_recalibration(&mut self) {
        self.stats.time_ns += self.config.timing.t_mrs_ns;
        self.stats.time.mrs_ns += self.config.timing.t_mrs_ns;
        self.stats.events.mode_sets += 1;
        self.record(MemCommand::ModeRegisterSet(self.mode));
    }

    /// One SEC-DED syndrome pass over a sensed row: the stored check
    /// bytes are sensed through the column path (12.5 % more bits —
    /// `CHECK_BITS_PER_WORD` per 64 data bits, the code's real storage
    /// overhead) and the syndrome XOR tree evaluates. Charged into the
    /// dedicated ECC time/energy buckets so the ladder-vs-ECC comparison
    /// can read the overhead directly.
    fn charge_ecc_check(&mut self, bits: u64) {
        let t = self.config.timing.t_ecc_ns;
        self.stats.time_ns += t;
        self.stats.time.ecc_ns += t;
        let check_bits = bits.div_ceil(64) * crate::secded::CHECK_BITS_PER_WORD;
        self.stats.energy.ecc_pj +=
            self.config.energy.sense_pj(check_bits) + self.config.energy.ecc_pj(bits);
    }

    fn charge_write(&mut self, addr: RowAddr, bits: u64, local: bool) {
        self.stats.time_ns += self.config.timing.t_wr_ns;
        self.stats.time.write_ns += self.config.timing.t_wr_ns;
        self.stats.energy.write_pj += self.config.energy.write_pj(bits);
        if self.config.reliability.protection == ProtectionMode::SecDed {
            // Encoding rides the write: the XOR tree computes the check
            // bytes and the write drivers program the extra 12.5 % of
            // cells holding them.
            let t = self.config.timing.t_ecc_ns;
            self.stats.time_ns += t;
            self.stats.time.ecc_ns += t;
            let check_bits = bits.div_ceil(64) * crate::secded::CHECK_BITS_PER_WORD;
            self.stats.energy.ecc_pj +=
                self.config.energy.write_pj(check_bits) + self.config.energy.ecc_pj(bits);
        }
        self.stats.events.row_writes += 1;
        self.dirty.wear.insert(addr);
        *self.wear.entry(addr).or_insert(0) += 1;
        if self.config.record_trace {
            self.record(MemCommand::WriteRow { addr, bits, local });
        }
    }

    fn charge_gdl(&mut self, bits: u64) {
        let cycles = self.config.geometry.gdl_cycles(bits);
        self.stats.time_ns += cycles as f64 * self.config.timing.t_gdl_cycle_ns;
        self.stats.time.gdl_ns += cycles as f64 * self.config.timing.t_gdl_cycle_ns;
        self.stats.energy.gdl_pj += self.config.energy.gdl_pj(bits);
        self.stats.events.gdl_transfers += 1;
        if self.config.record_trace {
            self.record(MemCommand::GdlTransfer { bits });
        }
    }

    fn charge_bus(&mut self, bits: u64) {
        self.stats.time_ns += self.config.timing.bus_transfer_ns(bits);
        self.stats.time.bus_ns += self.config.timing.bus_transfer_ns(bits);
        self.stats.energy.bus_pj += self.config.energy.bus_pj(bits);
        self.stats.events.bus_bursts += bits.div_ceil(self.config.timing.burst_bits());
        self.stats.events.bus_bits += bits;
        if self.config.record_trace {
            self.record(MemCommand::BusBurst { bits });
        }
    }

    fn record(&mut self, cmd: MemCommand) {
        if self.config.record_trace {
            self.trace.push(cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_nvm::NvmError;

    fn mem() -> MainMemory {
        MainMemory::new(MemConfig::pcm_default())
    }

    fn addr(subarray: u32, row: u32) -> RowAddr {
        RowAddr::new(0, 0, 0, subarray, row)
    }

    #[test]
    fn or_of_two_rows_is_functional() {
        let mut m = mem();
        m.poke_row(addr(0, 0), &RowData::from_bits(&[true, false, true, false]))
            .expect("poke a");
        m.poke_row(addr(0, 1), &RowData::from_bits(&[false, false, true, true]))
            .expect("poke b");
        let out = m
            .multi_activate_sense(&[addr(0, 0), addr(0, 1)], SenseMode::or(2).expect("or2"), 4)
            .expect("2-row OR");
        assert_eq!(out.bits(4), vec![true, false, true, true]);
    }

    #[test]
    fn and_of_two_rows_is_functional() {
        let mut m = mem();
        m.poke_row(addr(0, 0), &RowData::from_bits(&[true, true, false, false]))
            .expect("poke a");
        m.poke_row(addr(0, 1), &RowData::from_bits(&[true, false, true, false]))
            .expect("poke b");
        let out = m
            .multi_activate_sense(
                &[addr(0, 0), addr(0, 1)],
                SenseMode::and(2).expect("and2"),
                4,
            )
            .expect("2-row AND");
        assert_eq!(out.bits(4), vec![true, false, false, false]);
    }

    #[test]
    fn absent_rows_read_as_zeros() {
        let mut m = mem();
        let out = m.activate_read(addr(3, 77), 8).expect("read empty row");
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn multi_row_or_accumulates_128_rows() {
        let mut m = mem();
        let rows: Vec<RowAddr> = (0..128).map(|r| addr(0, r)).collect();
        // One hot bit somewhere in the middle.
        m.poke_row(addr(0, 64), &RowData::from_bits(&[false, true]))
            .expect("poke");
        let out = m
            .multi_activate_sense(&rows, SenseMode::or(128).expect("or128"), 2)
            .expect("128-row OR");
        assert_eq!(out.bits(2), vec![false, true]);
        assert_eq!(m.stats().events.rows_activated, 128);
        assert_eq!(m.stats().events.multi_activates, 1);
    }

    #[test]
    fn cross_subarray_activation_is_rejected() {
        let mut m = mem();
        let err = m
            .multi_activate_sense(&[addr(0, 0), addr(1, 0)], SenseMode::or(2).expect("or2"), 4)
            .expect_err("different subarrays cannot co-activate");
        assert!(matches!(err, MemError::SubarrayMismatch { .. }));
    }

    #[test]
    fn fan_in_beyond_margin_is_rejected() {
        let mut m = mem();
        let rows: Vec<RowAddr> = (0..129).map(|r| addr(0, r)).collect();
        let err = m
            .multi_activate_sense(&rows, SenseMode::Or { fan_in: 129 }, 4)
            .expect_err("129-row OR exceeds PCM margin");
        assert_eq!(
            err,
            MemError::Nvm(NvmError::FanInExceeded {
                requested: 129,
                supported: 128
            })
        );
    }

    #[test]
    fn operand_count_must_match_mode() {
        let mut m = mem();
        let err = m
            .multi_activate_sense(&[addr(0, 0)], SenseMode::or(2).expect("or2"), 4)
            .expect_err("one operand under an OR-2 reference");
        assert_eq!(err, MemError::Nvm(NvmError::DegenerateFanIn));
    }

    #[test]
    fn dram_memory_cannot_multi_sense() {
        let mut m = MainMemory::new(MemConfig::dram_default());
        assert_eq!(m.max_or_fan_in(), 1);
        let err = m
            .multi_activate_sense(&[addr(0, 0), addr(0, 1)], SenseMode::or(2).expect("or2"), 4)
            .expect_err("DRAM has no current SA");
        assert!(matches!(err, MemError::Nvm(NvmError::FanInExceeded { .. })));
    }

    #[test]
    fn timing_adds_up_for_multi_activate() {
        let mut m = mem();
        let rows: Vec<RowAddr> = (0..4).map(|r| addr(0, r)).collect();
        let cols = m.geometry().bits_per_sense_pass(); // exactly one pass
        m.multi_activate_sense(&rows, SenseMode::or(4).expect("or4"), cols)
            .expect("4-row OR");
        let t = TimingParams::pcm_ddr3_1600();
        let expect = t.multi_activate_ns(4) + t.t_cl_ns + t.t_rp_ns;
        assert!(
            (m.stats().time_ns - expect).abs() < 1e-9,
            "{}",
            m.stats().time_ns
        );
        assert_eq!(m.stats().events.sense_passes, 1);
    }

    #[test]
    fn sense_passes_scale_with_cols() {
        let mut m = mem();
        let per_pass = m.geometry().bits_per_sense_pass();
        m.activate_read(addr(0, 0), per_pass * 3 + 1).expect("read");
        assert_eq!(m.stats().events.sense_passes, 4);
    }

    #[test]
    fn local_write_back_skips_gdl_and_bus() {
        let mut m = mem();
        let data = RowData::from_bits(&[true; 64]);
        m.write_row_local(addr(0, 9), data.clone())
            .expect("local write");
        assert_eq!(m.stats().energy.gdl_pj, 0.0);
        assert_eq!(m.stats().energy.bus_pj, 0.0);
        assert!(m.stats().energy.write_pj > 0.0);
        assert_eq!(
            m.peek_row(addr(0, 9)).expect("stored").bits(2),
            vec![true, true]
        );
    }

    #[test]
    fn bus_write_charges_every_stage() {
        let mut m = mem();
        let data = RowData::from_bits(&[true; 64]);
        m.write_row_over_bus(addr(0, 9), data.clone())
            .expect("bus write");
        assert!(m.stats().energy.bus_pj > 0.0);
        assert!(m.stats().energy.gdl_pj > 0.0);
        assert!(m.stats().energy.write_pj > 0.0);
        assert_eq!(m.stats().events.bus_bits, 64);
    }

    #[test]
    fn bus_read_costs_more_time_than_buffer_read() {
        let mut a = mem();
        let mut b = mem();
        let cols = 1 << 16;
        a.read_row_over_bus(addr(0, 0), cols).expect("bus read");
        b.read_row_to_buffer(addr(0, 0), cols).expect("buffer read");
        assert!(a.stats().time_ns > b.stats().time_ns);
    }

    #[test]
    fn buffer_logic_combines_and_charges() {
        let mut m = mem();
        let mut acc = RowData::from_bits(&[true, false, true]);
        let op = RowData::from_bits(&[false, true, true]);
        m.buffer_logic(PimConfig::Xor, &mut acc, &op, 3)
            .expect("xor in buffer");
        assert_eq!(acc.bits(3), vec![true, true, false]);
        assert!(m.stats().energy.logic_pj > 0.0);
        assert_eq!(m.stats().events.logic_passes, 1);

        let err = m
            .buffer_logic(PimConfig::Off, &mut acc, &op, 3)
            .expect_err("OFF is not a combining mode");
        assert!(matches!(err, MemError::Nvm(_)));
    }

    #[test]
    fn mode_register_set_is_cached() {
        let mut m = mem();
        m.set_pim_config(PimConfig::Or);
        m.set_pim_config(PimConfig::Or);
        assert_eq!(m.stats().events.mode_sets, 1);
        m.set_pim_config(PimConfig::And);
        assert_eq!(m.stats().events.mode_sets, 2);
    }

    #[test]
    fn trace_records_commands_when_enabled() {
        let mut cfg = MemConfig::pcm_default();
        cfg.record_trace = true;
        let mut m = MainMemory::new(cfg);
        m.set_pim_config(PimConfig::Or);
        m.multi_activate_sense(&[addr(0, 0), addr(0, 1)], SenseMode::or(2).expect("or2"), 4)
            .expect("2-row OR");
        let kinds: Vec<String> = m.trace().iter().map(ToString::to_string).collect();
        assert_eq!(kinds[0], "MRS OR");
        assert!(kinds[1].starts_with("MACT x2"));
        assert!(kinds[2].starts_with("SENSE OR-2"));
        assert!(kinds[3].starts_with("PRE"));
    }

    #[test]
    fn take_stats_resets() {
        let mut m = mem();
        m.activate_read(addr(0, 0), 8).expect("read");
        let taken = m.take_stats();
        assert!(taken.time_ns > 0.0);
        assert_eq!(m.stats().time_ns, 0.0);
    }

    #[test]
    fn invert_in_sense_amp_is_differential() {
        let m = mem();
        let data = RowData::from_bits(&[true, false, true]);
        let inv = m.invert_in_sense_amp(data.clone());
        assert_eq!(inv.bits(3), vec![false, true, false]);
    }

    #[test]
    fn open_page_hits_skip_activation() {
        let mut cfg = MemConfig::pcm_default();
        cfg.open_page = true;
        let mut m = MainMemory::new(cfg);

        m.activate_read(addr(0, 5), 64)
            .expect("first read opens the page");
        let after_open = m.stats().time_ns;
        m.activate_read(addr(0, 5), 64).expect("second read hits");
        let hit_cost = m.stats().time_ns - after_open;
        assert!(
            (hit_cost - TimingParams::pcm_ddr3_1600().t_cl_ns).abs() < 1e-9,
            "a hit pays one column access, got {hit_cost}"
        );
        assert_eq!(m.stats().events.row_buffer_hits, 1);
        assert_eq!(m.stats().events.activates, 1, "no second activation");

        // A different row in the same subarray closes and reopens.
        m.activate_read(addr(0, 6), 64).expect("conflict read");
        assert_eq!(m.stats().events.precharges, 1);
        assert_eq!(m.stats().events.activates, 2);

        // Multi-row PIM activation closes the page.
        m.multi_activate_sense(&[addr(0, 1), addr(0, 2)], SenseMode::or(2).expect("or2"), 4)
            .expect("pim op");
        m.activate_read(addr(0, 6), 64).expect("read after pim op");
        assert_eq!(
            m.stats().events.row_buffer_hits,
            1,
            "the PIM op closed the page, so no further hit yet"
        );
    }

    #[test]
    fn closed_page_policy_never_hits() {
        let mut m = mem();
        m.activate_read(addr(0, 5), 64).expect("first");
        m.activate_read(addr(0, 5), 64).expect("second");
        assert_eq!(m.stats().events.row_buffer_hits, 0);
        assert_eq!(m.stats().events.precharges, 2);
    }

    #[test]
    fn wear_tracks_charged_writes_only() {
        let mut m = mem();
        let data = RowData::from_bits(&[true; 8]);
        // Pokes are setup: no wear.
        m.poke_row(addr(0, 1), &data).expect("poke");
        assert_eq!(m.wear_report().total_row_writes, 0);

        m.write_row_local(addr(0, 1), data.clone())
            .expect("write 1");
        m.write_row_local(addr(0, 1), data.clone())
            .expect("write 2");
        m.write_row_local(addr(0, 2), data.clone())
            .expect("write 3");
        let report = m.wear_report();
        assert_eq!(report.total_row_writes, 3);
        assert_eq!(report.rows_written, 2);
        assert_eq!(report.max_row_writes, 2);
        assert!((report.imbalance() - 2.0 / 1.5).abs() < 1e-12);
        assert_eq!(m.row_wear(addr(0, 1)), 2);
        assert_eq!(m.row_wear(addr(0, 9)), 0);
    }

    #[test]
    fn time_breakdown_sums_to_time_ns() {
        let mut m = mem();
        m.set_pim_config(PimConfig::Or);
        let rows: Vec<RowAddr> = (0..4).map(|r| addr(0, r)).collect();
        m.multi_activate_sense(&rows, SenseMode::or(4).expect("or4"), 64)
            .expect("or");
        let data = RowData::from_bits(&[true; 64]);
        m.write_row_over_bus(addr(0, 9), data.clone())
            .expect("bus write");
        m.write_row_local(addr(0, 10), data.clone())
            .expect("local write");
        m.read_row_to_buffer(addr(0, 9), 64).expect("buffer read");

        let s = m.stats();
        assert!(
            (s.time.total_ns() - s.time_ns).abs() < 1e-9,
            "breakdown {} vs scalar {}",
            s.time.total_ns(),
            s.time_ns
        );
        assert!(s.time.mrs_ns > 0.0);
        assert!(s.time.activate_ns > 0.0);
        assert!(s.time.sense_ns > 0.0);
        assert!(s.time.write_ns > 0.0);
        assert!(s.time.gdl_ns > 0.0);
        assert!(s.time.bus_ns > 0.0);
        assert!(s.time.precharge_ns > 0.0);
        assert_eq!(s.time.stall_ns, 0.0, "default timings never stall");
        assert!((s.time.shared_ns() - (s.time.bus_ns + s.time.mrs_ns)).abs() < 1e-12);
    }

    #[test]
    fn default_parameters_never_stall_activations() {
        let mut m = mem();
        // Back-to-back activations on different banks of one rank — the
        // densest ACT pattern a serial stream can produce.
        for bank in 0..8 {
            m.activate_read(RowAddr::new(0, 0, bank, 0, 0), 64)
                .expect("read");
        }
        assert_eq!(m.stats().time.stall_ns, 0.0);
    }

    #[test]
    fn tight_trrd_stalls_back_to_back_activations() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_rrd_ns = 1000.0;
        let mut m = MainMemory::new(cfg);
        m.activate_read(RowAddr::new(0, 0, 0, 0, 0), 64).expect("a");
        let after_first = m.stats().time_ns; // 18.3 + 8.9 + 7.8 = 35.0
        m.activate_read(RowAddr::new(0, 0, 1, 0, 0), 64).expect("b");
        // The second ACT (to another bank, same rank) waited until
        // 0 + tRRD = 1000, i.e. a stall of 1000 - 35.
        let expect_stall = 1000.0 - after_first;
        assert!(
            (m.stats().time.stall_ns - expect_stall).abs() < 1e-9,
            "stall {} vs {}",
            m.stats().time.stall_ns,
            expect_stall
        );
        assert!((m.stats().time.total_ns() - m.stats().time_ns).abs() < 1e-9);

        // A different rank has its own window: no extra stall.
        let stalled = m.stats().time.stall_ns;
        m.activate_read(RowAddr::new(0, 1, 0, 0, 0), 64).expect("c");
        assert!((m.stats().time.stall_ns - stalled).abs() < 1e-9);
    }

    #[test]
    fn tight_tfaw_gates_the_fifth_activation() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_faw_ns = 10_000.0;
        let mut m = MainMemory::new(cfg);
        for bank in 0..4 {
            m.activate_read(RowAddr::new(0, 0, bank, 0, 0), 64)
                .expect("read");
        }
        assert_eq!(m.stats().time.stall_ns, 0.0, "first four are free");
        m.activate_read(RowAddr::new(0, 0, 4, 0, 0), 64).expect("e");
        // The fifth ACT waits for the window opened by the first (issued
        // at time 0): stall = tFAW - 4 serial commands of 35 ns.
        let expect_stall = 10_000.0 - 4.0 * 35.0;
        assert!(
            (m.stats().time.stall_ns - expect_stall).abs() < 1e-9,
            "stall {}",
            m.stats().time.stall_ns
        );
    }

    #[test]
    fn take_stats_clears_the_activation_history() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_rrd_ns = 1000.0;
        let mut m = MainMemory::new(cfg);
        m.activate_read(RowAddr::new(0, 0, 0, 0, 0), 64).expect("a");
        m.take_stats();
        // On a fresh clock the old issue times must not gate anything.
        m.activate_read(RowAddr::new(0, 0, 1, 0, 0), 64).expect("b");
        assert_eq!(m.stats().time.stall_ns, 0.0);
    }

    #[test]
    fn split_carries_relative_activation_history() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_rrd_ns = 1000.0;
        let mut parent = MainMemory::new(cfg);
        parent
            .activate_read(RowAddr::new(0, 0, 0, 0, 0), 64)
            .expect("parent act");
        let parent_now = parent.stats().time_ns; // 35.0
        let mut shard = parent.split_channel(0);
        assert!(
            parent.act_history.is_empty(),
            "the history moved with the shard"
        );
        // The shard's clock starts at zero, but the parent's activation
        // was only 35 ns ago — the shard's first ACT must still honour
        // the 1000 ns window: stall = (0 - 35 + 1000) - 0 = 965.
        shard
            .activate_read(RowAddr::new(0, 0, 1, 0, 0), 64)
            .expect("shard act");
        let expect_stall = 1000.0 - parent_now;
        assert!(
            (shard.stats().time.stall_ns - expect_stall).abs() < 1e-9,
            "shard stall {} vs {}",
            shard.stats().time.stall_ns,
            expect_stall
        );
    }

    #[test]
    fn absorb_rebases_the_shard_history_onto_the_parent_clock() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_rrd_ns = 1000.0;
        let mut parent = MainMemory::new(cfg);
        parent
            .activate_read(RowAddr::new(0, 0, 0, 0, 0), 64)
            .expect("act 1");
        let mut shard = parent.split_channel(0);
        shard
            .activate_read(RowAddr::new(0, 0, 1, 0, 0), 64)
            .expect("act 2"); // issues at shard-time 965
        parent.absorb(shard);
        // Serial would run the three activations at 0, 1000 and 2000:
        // the absorbed history must gate the third exactly the same way.
        parent
            .activate_read(RowAddr::new(0, 0, 2, 0, 0), 64)
            .expect("act 3");
        let expect_total_stall = 2.0 * (1000.0 - 35.0);
        assert!(
            (parent.stats().time.stall_ns - expect_total_stall).abs() < 1e-9,
            "total stall {} vs {}",
            parent.stats().time.stall_ns,
            expect_total_stall
        );
    }

    #[test]
    fn dirty_delta_carries_relative_activation_history() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_rrd_ns = 1000.0;
        let mut parent = MainMemory::new(cfg);
        let mut shard = parent.clone_channel(0);
        shard
            .activate_read(RowAddr::new(0, 0, 0, 0, 0), 64)
            .expect("shard act");
        let deltas = shard.take_dirty_state();
        let with_acts: Vec<_> = deltas
            .iter()
            .filter(|d| !d.act_history.is_empty())
            .collect();
        assert_eq!(with_acts.len(), 1, "the gated channel ships its window");
        assert!(
            with_acts[0].act_history[0].1.iter().all(|&r| r <= 0.0),
            "offsets are relative to the sender's clock, hence non-positive"
        );
        for delta in deltas {
            parent.apply_delta(delta);
        }
        // The parent's clock never advanced (it executed nothing), so the
        // re-anchored entry sits 35 ns in its past and gates exactly as
        // the shard's own next activation would have.
        parent
            .activate_read(RowAddr::new(0, 0, 1, 0, 0), 64)
            .expect("parent act");
        let expect_stall = 1000.0 - 35.0;
        assert!(
            (parent.stats().time.stall_ns - expect_stall).abs() < 1e-9,
            "parent stall {} vs {}",
            parent.stats().time.stall_ns,
            expect_stall
        );
    }

    #[test]
    fn worn_rows_respect_the_threshold_and_sort() {
        let mut m = mem();
        let data = RowData::from_bits(&[true; 8]);
        let hot = RowAddr::new(1, 0, 2, 3, 7);
        let warm = RowAddr::new(0, 1, 0, 0, 1);
        let cold = RowAddr::new(0, 0, 0, 0, 0);
        for _ in 0..5 {
            m.write_row_local(hot, data.clone()).expect("hot");
        }
        for _ in 0..3 {
            m.write_row_local(warm, data.clone()).expect("warm");
        }
        m.write_row_local(cold, data.clone()).expect("cold");

        assert_eq!(m.row_wear(hot), 5);
        assert_eq!(m.row_wear(warm), 3);
        assert_eq!(m.row_wear(cold), 1);
        // Threshold is inclusive (`>= limit`) and the result is sorted.
        assert_eq!(m.worn_rows(3), vec![warm, hot]);
        assert_eq!(m.worn_rows(5), vec![hot]);
        assert_eq!(m.worn_rows(6), Vec::<RowAddr>::new());
        // Every charged write path wears the row; pokes never do.
        m.write_row_over_bus(cold, data.clone()).expect("bus");
        m.write_row_from_buffer(cold, data.clone()).expect("buffer");
        assert_eq!(m.row_wear(cold), 3);
        m.poke_row(cold, &data).expect("poke");
        assert_eq!(m.row_wear(cold), 3);
    }

    #[test]
    fn invalid_addresses_are_rejected_everywhere() {
        let mut m = mem();
        let bad = RowAddr::new(99, 0, 0, 0, 0);
        let data = RowData::from_bits(&[true]);
        assert!(matches!(
            m.poke_row(bad, &data),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            m.write_row_local(bad, data.clone()),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            m.activate_read(bad, 1),
            Err(MemError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_cols_is_rejected() {
        let mut m = mem();
        assert_eq!(
            m.activate_read(addr(0, 0), 0).expect_err("zero columns"),
            MemError::EmptyOperation
        );
    }

    #[test]
    fn cols_beyond_row_is_rejected() {
        let mut m = mem();
        let row_bits = m.geometry().logical_row_bits();
        assert!(matches!(
            m.activate_read(addr(0, 0), row_bits + 1),
            Err(MemError::ColsExceedRow { .. })
        ));
    }

    // ---- fault injection & recovery ----

    /// A PCM memory with the given fault model and reliability policy.
    fn faulty_mem(model: FaultModel, reliability: ReliabilityConfig) -> MainMemory {
        let mut config = MemConfig::pcm_default();
        config.fault_model = model;
        config.reliability = reliability;
        MainMemory::new(config)
    }

    /// A fault model that is *active* (so the physical sense path runs)
    /// but injects nothing: every probability is zero except a transient
    /// rate far below anything a finite random stream can hit.
    fn benign_model() -> FaultModel {
        FaultModel::with_seed(7).with_transients(1e-300, 1e-300, 1e-300)
    }

    #[test]
    fn none_model_disables_injection_even_with_protection_on() {
        let mut m = faulty_mem(FaultModel::none(), ReliabilityConfig::protected());
        assert!(!m.fault_injection_active());
        let mut plain = mem();
        let pattern = RowData::from_bits(&[true, false, true, true]);
        for target in [&mut m, &mut plain] {
            target.poke_row(addr(0, 0), &pattern).expect("poke");
            target.poke_row(addr(0, 1), &pattern).expect("poke");
            let out = target
                .multi_activate_sense_protected(
                    &[addr(0, 0), addr(0, 1)],
                    SenseMode::or(2).expect("or2"),
                    4,
                )
                .expect("protected OR");
            assert_eq!(out.bits(4), vec![true, false, true, true]);
        }
        assert_eq!(m.stats(), plain.stats(), "none model must be bit-identical");
        assert!(m.stats().reliability.is_zero());
    }

    #[test]
    fn physical_sense_path_is_exact_when_faults_never_fire() {
        let mut m = faulty_mem(benign_model(), ReliabilityConfig::off());
        assert!(m.fault_injection_active());
        m.poke_row(addr(0, 0), &RowData::from_bits(&[true, false, true, false]))
            .expect("poke a");
        m.poke_row(addr(0, 1), &RowData::from_bits(&[false, false, true, true]))
            .expect("poke b");
        let out = m
            .multi_activate_sense(&[addr(0, 0), addr(0, 1)], SenseMode::or(2).expect("or2"), 4)
            .expect("2-row OR");
        assert_eq!(out.bits(4), vec![true, false, true, true]);
        assert_eq!(m.stats().reliability.injected_bit_errors, 0);
        assert_eq!(m.stats().reliability.silent_wrong_bits, 0);
    }

    #[test]
    fn verified_write_retries_through_transient_flips() {
        let mut cfg = ReliabilityConfig::protected();
        cfg.max_write_retries = 40;
        // Seed chosen so the first write event flips bits and a later
        // attempt within the retry budget draws a clean event.
        let mut m = faulty_mem(FaultModel::with_seed(0x1D).with_write_flips(0.02), cfg);
        let data = RowData::from_bits(&[true; 32]);
        m.write_row_local(addr(0, 0), data.clone())
            .expect("write lands");
        assert_eq!(m.peek_row(addr(0, 0)).expect("stored"), &data);
        let r = m.stats().reliability;
        assert!(r.injected_write_faults > 0, "flips must have fired");
        assert!(r.write_retries > 0, "verify must have caught them");
        assert!(r.is_consistent(), "{r:?}");
        assert_eq!(r.silent_wrong_bits, 0);
    }

    #[test]
    fn stuck_cells_defeat_verified_writes_explicitly() {
        let mut m = faulty_mem(
            FaultModel::with_seed(0xBAD).with_stuck_at(0.3, 0.0),
            ReliabilityConfig::protected(),
        );
        let err = m
            .write_row_local(addr(0, 0), RowData::from_bits(&[true; 128]))
            .expect_err("stuck-at-0 cells cannot hold ones");
        assert!(matches!(err, MemError::UncorrectableWrite { .. }));
        let r = m.stats().reliability;
        assert!(r.uncorrectable_errors >= 1);
        assert!(r.is_consistent(), "{r:?}");
    }

    #[test]
    fn parity_flags_unverified_bad_writes_on_read() {
        // Writes are not verified, so stuck cells corrupt the array
        // silently; the per-row parity must catch it at read time, and
        // since the corruption is deterministic, retries cannot fix it —
        // the read must fail *explicitly*. Parity's blind spot (an even
        // number of flips inside one 64-bit word) must land in the
        // silent-wrong-bits ledger, never go completely unaccounted.
        let mut cfg = ReliabilityConfig::protected();
        cfg.verify_writes = false;
        let mut m = faulty_mem(FaultModel::with_seed(0xBAD).with_stuck_at(0.01, 0.0), cfg);
        let data = RowData::from_bits(&[true; 128]);
        let mut explicit_failures = 0u64;
        let mut escaped_bits = 0u64;
        for row in 0..16 {
            m.poke_row(addr(0, row), &data).expect("unverified poke");
            match m.activate_read(addr(0, row), 128) {
                Ok(got) => {
                    let mut diff = got;
                    diff.xor_assign(&data);
                    escaped_bits += diff.count_ones();
                }
                Err(MemError::UncorrectableRead { .. }) => explicit_failures += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let r = m.stats().reliability;
        assert!(explicit_failures >= 1, "some rows must fail parity");
        assert!(r.detected_errors >= explicit_failures);
        assert!(r.sense_retries > 0, "the ladder must have retried");
        assert_eq!(
            r.silent_wrong_bits, escaped_bits,
            "every wrong bit in accepted data must be in the ledger"
        );
        assert!(r.is_consistent(), "{r:?}");
    }

    #[test]
    fn wide_or_splits_at_the_reliable_fan_in() {
        let mut cfg = ReliabilityConfig::protected();
        cfg.reliable_fan_in = ReliableFanIn::Fixed(4);
        let mut m = faulty_mem(benign_model(), cfg);
        assert_eq!(m.reliable_or_fan_in(), 4);
        let rows: Vec<RowAddr> = (0..8).map(|r| addr(0, r)).collect();
        m.poke_row(addr(0, 6), &RowData::from_bits(&[false, true]))
            .expect("poke");
        let out = m
            .multi_activate_sense_protected(&rows, SenseMode::or(8).expect("or8"), 2)
            .expect("split OR");
        assert_eq!(out.bits(2), vec![false, true]);
        let r = m.stats().reliability;
        assert_eq!(r.fan_in_splits, 1);
        assert_eq!(
            m.stats().events.multi_activates,
            2,
            "8 rows at limit 4 means two OR-4 chunks"
        );
        assert!(r.is_consistent(), "{r:?}");
    }

    #[test]
    fn unstable_sense_surfaces_after_bounded_retries() {
        // A transient rate of 0.5 per cell makes duplicate senses disagree
        // essentially always: the ladder must exhaust its retries and hand
        // the decision up instead of looping or returning garbage.
        let mut m = faulty_mem(
            FaultModel::with_seed(0xF1).with_transients(0.0, 0.5, 0.0),
            ReliabilityConfig::protected(),
        );
        let rows = [addr(0, 0), addr(0, 1)];
        let err = m
            .multi_activate_sense_protected(&rows, SenseMode::or(2).expect("or2"), 64)
            .expect_err("duplicate senses cannot agree at 50% flip rate");
        assert!(matches!(err, MemError::SenseUnstable { .. }));
        let r = m.stats().reliability;
        assert!(r.detected_errors >= 1);
        assert_eq!(r.sense_retries, 3, "protected() allows three retries");
        // The caller now resolves it; mimic the engine's RMW fallback so
        // the ledger closes.
        m.note_rmw_fallback();
        m.note_recovery_resolved();
        let r = m.stats().reliability;
        assert_eq!(r.rmw_fallbacks, 1);
        assert!(r.is_consistent(), "{r:?}");
    }

    #[test]
    fn recovery_charges_real_time_and_energy() {
        // The ladder is not free: a run with retries must cost strictly
        // more than the same run fault-free.
        let mut clean = mem();
        let mut noisy = faulty_mem(
            FaultModel::with_seed(0xF1).with_transients(0.0, 0.5, 0.0),
            ReliabilityConfig::protected(),
        );
        for m in [&mut clean, &mut noisy] {
            let _ = m.multi_activate_sense_protected(
                &[addr(0, 0), addr(0, 1)],
                SenseMode::or(2).expect("or2"),
                64,
            );
        }
        assert!(noisy.stats().time_ns > clean.stats().time_ns);
        assert!(noisy.stats().total_energy_pj() > clean.stats().total_energy_pj());
        assert!(noisy.stats().events.mode_sets > clean.stats().events.mode_sets);
    }

    // ---- channel sharding ----

    fn ch_addr(channel: u32, subarray: u32, row: u32) -> RowAddr {
        RowAddr::new(channel, 0, 0, subarray, row)
    }

    #[test]
    fn split_and_absorb_round_trip_state_and_stats() {
        let mut m = mem();
        let a = RowData::from_bits(&[true, false, true, false]);
        let b = RowData::from_bits(&[false, true, true, false]);
        m.poke_row(ch_addr(0, 0, 0), &a).expect("poke ch0");
        m.poke_row(ch_addr(1, 0, 0), &b).expect("poke ch1");

        let mut shard = m.split_channel(1);
        assert!(m.peek_row(ch_addr(1, 0, 0)).is_none(), "ch1 moved out");
        assert_eq!(shard.peek_row(ch_addr(1, 0, 0)), Some(&b));
        assert_eq!(shard.peek_row(ch_addr(0, 0, 0)), None);
        assert_eq!(shard.max_or_fan_in(), m.max_or_fan_in());
        assert_eq!(shard.reliable_or_fan_in(), m.reliable_or_fan_in());
        assert!(shard.stats().time_ns == 0.0, "shard ledgers start at zero");

        // Work on both halves independently.
        let parent_out = m.activate_read(ch_addr(0, 0, 0), 4).expect("read ch0");
        let shard_out = shard.activate_read(ch_addr(1, 0, 0), 4).expect("read ch1");
        assert_eq!(parent_out, a);
        assert_eq!(shard_out, b);
        let parent_stats = *m.stats();
        let shard_stats = *shard.stats();

        m.absorb(shard);
        assert_eq!(m.peek_row(ch_addr(1, 0, 0)), Some(&b));
        assert_eq!(*m.stats(), parent_stats + shard_stats);
        assert_eq!(m.wear_report().total_row_writes, 0, "pokes charge no wear");
    }

    #[test]
    fn sharded_fault_streams_match_serial_execution() {
        // With per-channel streams, the draws a channel consumes do not
        // depend on whether the other channels executed in between — so a
        // serial run and a split/execute/absorb run are bit-identical.
        let model = FaultModel::with_seed(0xD15C)
            .with_transients(1e-2, 1e-2, 1e-2)
            .with_write_flips(1e-2);
        let reliability = ReliabilityConfig::protected();
        let pattern = RowData::from_bits(&[true, false, true, true]);

        let run_serial = |order_ch1_first: bool| -> (Vec<RowData>, MemStats) {
            let mut m = faulty_mem(model, reliability);
            for ch in 0..2 {
                m.poke_row(ch_addr(ch, 0, 0), &pattern).expect("poke");
                m.poke_row(ch_addr(ch, 0, 1), &pattern).expect("poke");
            }
            let channels: &[u32] = if order_ch1_first { &[1, 0] } else { &[0, 1] };
            let mut outs = vec![RowData::zeros(4); 2];
            for &ch in channels {
                outs[ch as usize] = m
                    .multi_activate_sense_protected(
                        &[ch_addr(ch, 0, 0), ch_addr(ch, 0, 1)],
                        SenseMode::or(2).expect("or2"),
                        4,
                    )
                    .expect("protected OR");
            }
            (outs, *m.stats())
        };

        let (serial_outs, serial_stats) = run_serial(false);
        let (reordered_outs, reordered_stats) = run_serial(true);
        assert_eq!(serial_outs, reordered_outs, "streams are order-independent");
        assert_eq!(serial_stats, reordered_stats);

        // Split channel 1 out, execute both halves, merge.
        let mut m = faulty_mem(model, reliability);
        for ch in 0..2 {
            m.poke_row(ch_addr(ch, 0, 0), &pattern).expect("poke");
            m.poke_row(ch_addr(ch, 0, 1), &pattern).expect("poke");
        }
        let before = *m.stats();
        let mut shard = m.split_channel(1);
        let out1 = shard
            .multi_activate_sense_protected(
                &[ch_addr(1, 0, 0), ch_addr(1, 0, 1)],
                SenseMode::or(2).expect("or2"),
                4,
            )
            .expect("shard OR");
        let out0 = m
            .multi_activate_sense_protected(
                &[ch_addr(0, 0, 0), ch_addr(0, 0, 1)],
                SenseMode::or(2).expect("or2"),
                4,
            )
            .expect("parent OR");
        m.absorb(shard);
        assert_eq!(vec![out0, out1], serial_outs);
        assert_eq!(*m.stats() - before, serial_stats - before);
        assert!(m.stats().reliability.is_consistent());
    }

    #[test]
    fn preload_pim_config_is_free() {
        let mut m = mem();
        m.preload_pim_config(PimConfig::Or);
        assert_eq!(m.pim_config(), PimConfig::Or);
        assert_eq!(m.stats().events.mode_sets, 0);
        assert_eq!(m.stats().time_ns, 0.0);
        // A charged set to the preloaded mode is now a cache hit.
        m.set_pim_config(PimConfig::Or);
        assert_eq!(m.stats().events.mode_sets, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn split_of_an_invalid_channel_panics() {
        let mut m = mem();
        let _ = m.split_channel(99);
    }

    #[test]
    fn clone_channel_copies_zero_row_pages_until_first_write() {
        let mut m = mem();
        let n = crate::page::ROWS_PER_PAGE * 4;
        let original = RowData::from_bits(&[true, true, false, true]);
        for row in 0..n {
            m.poke_row(ch_addr(0, 0, row), &original).expect("poke");
        }
        let _ = m.take_dirty_state();
        assert_eq!(m.stats().row_pages_copied, 0, "populating copies nothing");

        let mut shard = m.clone_channel(0);
        assert_eq!(
            m.stats().row_pages_copied + shard.stats().row_pages_copied,
            0,
            "cloning a channel of {n} populated rows must copy zero row pages"
        );

        // First shard write to a shared page copies exactly that page.
        let update = RowData::from_bits(&[false, false, true, false]);
        shard.poke_row(ch_addr(0, 0, 0), &update).expect("poke");
        assert_eq!(shard.stats().row_pages_copied, 1);
        // A second write inside the now-exclusive page copies nothing.
        shard.poke_row(ch_addr(0, 0, 1), &update).expect("poke");
        assert_eq!(shard.stats().row_pages_copied, 1);
        // A write landing in a different shared page copies that one too.
        shard
            .poke_row(ch_addr(0, 0, crate::page::ROWS_PER_PAGE), &update)
            .expect("poke");
        assert_eq!(shard.stats().row_pages_copied, 2);
        // The stale mirror never observed any of it.
        assert_eq!(m.peek_row(ch_addr(0, 0, 0)), Some(&original));
        assert_eq!(m.stats().row_pages_copied, 0);
    }

    #[test]
    fn clone_channel_retains_undrained_dirty_state_in_the_parent() {
        let mut m = mem();
        let data = RowData::from_bits(&[true, false]);
        m.poke_row(ch_addr(0, 0, 3), &data).expect("poke ch0");
        m.poke_row(ch_addr(1, 0, 7), &data).expect("poke ch1");

        // Clone while the parent still holds undrained dirty state for
        // both channels: nothing is discarded — the entries stay in the
        // parent's log (it holds that state current; the clone shares
        // it), so the parent's next drain still ships them …
        let mut shard = m.clone_channel(1);
        let parent_deltas = m.take_dirty_state();
        assert_eq!(parent_deltas.len(), 2, "parent still ships both channels");
        assert_eq!(parent_deltas[0].channel, 0);
        assert_eq!(parent_deltas[1].channel, 1);
        assert!(
            parent_deltas[1]
                .pages
                .iter()
                .any(|(id, _)| id.channel() == 1),
            "retained dirty state covers the poked page"
        );

        // … while the shard starts in sync with the parent, so its own
        // deltas carry only writes made after the clone.
        assert!(
            shard.take_dirty_state().is_empty(),
            "a fresh clone has nothing of its own to ship"
        );
        let addr = ch_addr(1, 0, 9);
        shard.poke_row(addr, &data).expect("poke shard");
        let shard_deltas = shard.take_dirty_state();
        assert_eq!(shard_deltas.len(), 1);
        assert_eq!(shard_deltas[0].channel, 1);
        let (expected_page, _) = PageId::of(addr);
        assert_eq!(
            shard_deltas[0]
                .pages
                .iter()
                .map(|&(id, _)| id)
                .collect::<Vec<_>>(),
            vec![expected_page],
            "only the shard's own write is shipped"
        );
    }
}
