//! Command-granularity channel timelines.
//!
//! The batch scheduler used to model each request as one opaque block: a
//! single lane reservation, a single tRRD/tFAW gate at launch, and a bus
//! cursor that serialized whole requests. This module expands a request's
//! charged [`TimeBreakdown`] back into the *timed command stream* the
//! controller actually issued — segment ACTs (including the extra latched
//! activations of a multi-row op), sense passes, SA writes, precharges,
//! GDL hops and DDR-bus bursts — and places those commands on a
//! [`ChannelTimeline`] that models the channel's discrete resources:
//!
//! * one **lane** per (rank, bank) — the bank's SA stripe and write
//!   drivers; a request's commands chain sequentially on their lane;
//! * one **GDL** port per rank — chip-internal global-data-line moves;
//! * one shared **bus** per channel — DDR bursts and mode-register sets;
//! * a per-rank **activation ledger** enforcing tRRD/tFAW at *command*
//!   granularity: an ACT may slot between two other requests' ACTs as
//!   long as every neighbouring gap respects tRRD and every four-ACT
//!   window spans tFAW.
//!
//! Commands from different requests interleave freely subject to those
//! resources plus one global discipline: requests *issue* in schedule
//! order on the channel (a later request's first command never precedes
//! an earlier request's first command), mirroring the in-order command
//! queue of the request-granularity model.
//!
//! [`ChannelTimeline::place_fused`] reproduces the old request-granularity
//! placement exactly, so callers can report both accounts and take the
//! per-channel minimum: a controller is never obliged to interleave when
//! the coarse schedule would finish earlier (under deliberately tight
//! tFAW, per-command gating can cost more than it recovers), which makes
//! `interleaved ≤ request-granularity` hold by construction.
//!
//! Everything here is *relative time*: a timeline starts at zero and has
//! no notion of the controller's absolute clock, the same clock-scoping
//! rule the shard split/absorb protocol follows for its activation
//! history (see [`crate::MainMemory::split_channel`]).

use crate::stats::TimeBreakdown;
use pinatubo_nvm::timing::TimingParams;
use std::collections::HashMap;

/// Which resource a command step occupies (besides its request's lane
/// chain, which every step advances).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// A row activation: occupies the lane and must clear the rank's
    /// tRRD/tFAW activation ledger.
    Act,
    /// Bank-local work (sense passes, SA writes, precharge, ECC): occupies
    /// only the lane.
    Lane,
    /// A global-data-line move: occupies the rank's GDL port.
    Gdl,
    /// Shared-bus work (DDR bursts, mode-register sets): occupies the
    /// channel bus.
    Shared,
}

/// One timed command step of a request's stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmdStep {
    /// The resource class this step occupies.
    pub kind: CmdKind,
    /// The step's duration, nanoseconds.
    pub ns: f64,
}

/// Cap on the number of activation units a stream is expanded into. A
/// 496-activation fused OR would otherwise produce thousands of steps and
/// make schedule lookahead quadratic in them; beyond the cap, each unit
/// carries several activations' worth of time (and one ledger entry),
/// which only *under*-counts tFAW pressure — the request-granularity
/// fallback already under-counts it at one entry per request.
const MAX_ACT_UNITS: u64 = 32;

/// A request's charged cost, expanded back into a timed command stream.
///
/// Built with [`RequestStream::from_breakdown`]; the step durations sum
/// to the breakdown's `total_ns()` exactly (up to float rounding), so a
/// timeline placed from streams reproduces the charged account — the
/// scheduler's cost model and the controller's ledger cannot drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestStream {
    steps: Vec<CmdStep>,
    total_ns: f64,
    shared_ns: f64,
    acts: u64,
}

impl RequestStream {
    /// Expands a charged (or estimated) [`TimeBreakdown`] into the command
    /// stream that produced it: one leading mode-register step, then
    /// `activations` repeating units of ACT → sense → GDL → bus → write +
    /// precharge, each carrying an equal share of the mechanism totals.
    /// The controller charges per-mechanism sums, not per-command logs, so
    /// the even split is the canonical reconstruction; zero-duration steps
    /// are elided.
    #[must_use]
    pub fn from_breakdown(time: &TimeBreakdown, activations: u64) -> RequestStream {
        let mut stream = RequestStream {
            steps: Vec::new(),
            total_ns: 0.0,
            shared_ns: 0.0,
            acts: 0,
        };
        stream.push(CmdKind::Shared, time.mrs_ns);
        if activations == 0 {
            // No activation to anchor the units on (e.g. a pure bus
            // transfer): one block in command order. Any residual
            // activate time rides the lane — with no ledger entries
            // claimed it cannot be tRRD/tFAW-gated.
            stream.push(
                CmdKind::Lane,
                time.activate_ns + time.sense_ns + time.ecc_ns + time.stall_ns,
            );
            stream.push(CmdKind::Gdl, time.gdl_ns);
            stream.push(CmdKind::Shared, time.bus_ns);
            stream.push(CmdKind::Lane, time.write_ns + time.precharge_ns);
            return stream;
        }
        let units = activations.min(MAX_ACT_UNITS);
        let per = units as f64;
        for _ in 0..units {
            stream.push(CmdKind::Act, time.activate_ns / per);
            stream.push(
                CmdKind::Lane,
                (time.sense_ns + time.ecc_ns + time.stall_ns) / per,
            );
            stream.push(CmdKind::Gdl, time.gdl_ns / per);
            stream.push(CmdKind::Shared, time.bus_ns / per);
            stream.push(CmdKind::Lane, (time.write_ns + time.precharge_ns) / per);
        }
        stream
    }

    fn push(&mut self, kind: CmdKind, ns: f64) {
        if ns <= 0.0 {
            return;
        }
        self.steps.push(CmdStep { kind, ns });
        self.total_ns += ns;
        if kind == CmdKind::Shared {
            self.shared_ns += ns;
        }
        if kind == CmdKind::Act {
            self.acts += 1;
        }
    }

    /// The expanded command steps, in issue order.
    #[must_use]
    pub fn steps(&self) -> &[CmdStep] {
        &self.steps
    }

    /// Sum of all step durations (== the breakdown's `total_ns()`).
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }

    /// Sum of the shared-bus steps (== the breakdown's `shared_ns()`).
    #[must_use]
    pub fn shared_ns(&self) -> f64 {
        self.shared_ns
    }

    /// Number of activation steps in the stream.
    #[must_use]
    pub fn activation_steps(&self) -> u64 {
        self.acts
    }
}

/// Where a request landed on a [`ChannelTimeline`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Placement {
    /// Issue time of the request's first command.
    pub start_ns: f64,
    /// Completion time of its last command.
    pub end_ns: f64,
    /// Wait inserted by the tRRD/tFAW activation ledger.
    pub act_stall_ns: f64,
    /// Wait spent on busy shared resources (channel bus, rank GDL port)
    /// beyond the request's own chaining.
    pub bus_wait_ns: f64,
}

/// Discrete-resource occupancy of one channel, at command granularity.
///
/// One instance models one placement discipline: use either
/// [`ChannelTimeline::place`] (command interleaving) or
/// [`ChannelTimeline::place_fused`] (request granularity) on a given
/// timeline, never both — the activation ledger's semantics differ
/// (full insertion history vs. rolling four-entry launch window).
#[derive(Debug, Clone)]
pub struct ChannelTimeline {
    timing: TimingParams,
    /// Issue-order cursor: start time of the most recently placed request.
    issue_ns: f64,
    /// When the channel's shared bus frees.
    bus_free_ns: f64,
    /// When each (rank, bank) lane frees.
    lane_free: HashMap<(u32, u32), f64>,
    /// When each rank's GDL port frees.
    gdl_free: HashMap<u32, f64>,
    /// Per-rank activation issue times, ascending. Under `place` this is
    /// the full ledger ACTs slot into; under `place_fused` it is the old
    /// rolling window of at most four launch gates.
    rank_acts: HashMap<u32, Vec<f64>>,
}

/// How many occupied slots an activation search walks before giving up
/// and issuing after the rank's last activation. Bounds worst-case
/// placement cost on adversarially dense ledgers.
const MAX_SLOT_WALK: usize = 16;

impl ChannelTimeline {
    /// An empty timeline (relative time zero) under `timing`.
    #[must_use]
    pub fn new(timing: TimingParams) -> ChannelTimeline {
        ChannelTimeline {
            timing,
            issue_ns: 0.0,
            bus_free_ns: 0.0,
            lane_free: HashMap::new(),
            gdl_free: HashMap::new(),
            rank_acts: HashMap::new(),
        }
    }

    /// Places a request's command stream on lane (`rank`, `bank`),
    /// interleaving its commands with previously placed requests':
    /// each step starts at the later of the request's own chain and its
    /// resource's availability; ACT steps additionally slot into the
    /// rank's tRRD/tFAW ledger (possibly *between* earlier requests'
    /// activations). The request's first command never precedes the
    /// previously placed request's first command (in-order issue).
    pub fn place(&mut self, rank: u32, bank: u32, stream: &RequestStream) -> Placement {
        let lane = self.lane_free.get(&(rank, bank)).copied().unwrap_or(0.0);
        let mut chain = self.issue_ns.max(lane);
        let mut placement = Placement::default();
        let mut first = true;
        for step in &stream.steps {
            let mut at = chain;
            match step.kind {
                CmdKind::Act => {
                    let acts = self.rank_acts.entry(rank).or_default();
                    let slot = earliest_act_slot(acts, at, &self.timing);
                    placement.act_stall_ns += slot - at;
                    at = slot;
                    let pos = acts.partition_point(|&t| t <= at);
                    acts.insert(pos, at);
                }
                CmdKind::Shared => {
                    if self.bus_free_ns > at {
                        placement.bus_wait_ns += self.bus_free_ns - at;
                        at = self.bus_free_ns;
                    }
                    self.bus_free_ns = at + step.ns;
                }
                CmdKind::Gdl => {
                    let free = self.gdl_free.get(&rank).copied().unwrap_or(0.0);
                    if free > at {
                        placement.bus_wait_ns += free - at;
                        at = free;
                    }
                    self.gdl_free.insert(rank, at + step.ns);
                }
                CmdKind::Lane => {}
            }
            if first {
                placement.start_ns = at;
                first = false;
            }
            chain = at + step.ns;
        }
        if first {
            // Empty stream: nothing issued, nothing reserved.
            return Placement::default();
        }
        placement.end_ns = chain;
        self.lane_free.insert((rank, bank), placement.end_ns);
        self.issue_ns = placement.start_ns;
        placement
    }

    /// Places a request as one opaque block — the request-granularity
    /// model this module replaces, kept as the never-worse fallback and
    /// comparison baseline. The request launches once the channel bus and
    /// its lane are free; a stream containing activations additionally
    /// gates the launch through a rolling four-entry per-rank window; the
    /// bus is then held for the stream's shared time and the lane to the
    /// request's end.
    pub fn place_fused(&mut self, rank: u32, bank: u32, stream: &RequestStream) -> Placement {
        if stream.steps.is_empty() {
            return Placement::default();
        }
        let lane = self.lane_free.get(&(rank, bank)).copied().unwrap_or(0.0);
        let ready = self.bus_free_ns.max(lane);
        let start = if stream.acts > 0 {
            let history = self.rank_acts.entry(rank).or_default();
            let gated = self.timing.earliest_activation_ns(history, ready);
            history.push(gated);
            if history.len() > 4 {
                history.remove(0);
            }
            gated
        } else {
            ready
        };
        let end = start + stream.total_ns;
        self.bus_free_ns = start + stream.shared_ns;
        self.lane_free.insert((rank, bank), end);
        self.issue_ns = start;
        Placement {
            start_ns: start,
            end_ns: end,
            act_stall_ns: start - ready,
            bus_wait_ns: 0.0,
        }
    }

    /// Completion time of the channel: when its last busy resource frees.
    #[must_use]
    pub fn completion_ns(&self) -> f64 {
        self.lane_free
            .values()
            .chain(self.gdl_free.values())
            .copied()
            .fold(self.bus_free_ns, f64::max)
    }

    /// Distinct (rank, bank) lanes placed on so far.
    #[must_use]
    pub fn lanes_used(&self) -> usize {
        self.lane_free.len()
    }
}

/// Earliest time ≥ `ready` at which a new activation fits the rank's
/// ledger: at least tRRD from *every* existing activation (the new ACT
/// may slot between two old ones) and no four-activation window tighter
/// than tFAW. The search walks forward past at most [`MAX_SLOT_WALK`]
/// conflicts, then issues after the ledger's last entry.
fn earliest_act_slot(acts: &[f64], ready: f64, timing: &TimingParams) -> f64 {
    let mut t = ready;
    for _ in 0..MAX_SLOT_WALK {
        match slot_conflict(acts, t, timing) {
            None => return t,
            Some(next) => t = next,
        }
    }
    // Adversarially dense ledger: give up on slotting between entries
    // and issue after the last one (tRRD) and the fourth-most-recent
    // (tFAW) — the same constraints a rolling window would apply.
    let last = acts.last().copied().unwrap_or(f64::NEG_INFINITY);
    let mut t = t.max(last + timing.t_rrd_ns);
    if acts.len() >= 4 {
        t = t.max(acts[acts.len() - 4] + timing.t_faw_ns);
    }
    t
}

/// Whether an activation at `t` violates tRRD against a neighbour or
/// tFAW over any five consecutive activations containing it (tFAW bounds
/// an ACT against its fourth-most-recent predecessor: any five ACTs on
/// the rank must span at least tFAW); returns the earliest later
/// candidate time to retry if so.
fn slot_conflict(acts: &[f64], t: f64, timing: &TimingParams) -> Option<f64> {
    let i = acts.partition_point(|&a| a <= t);
    // tRRD against the nearest neighbours (the ledger is sorted, so only
    // they can be within the exclusion zone).
    if i > 0 && t - acts[i - 1] < timing.t_rrd_ns - 1e-12 {
        return Some(acts[i - 1] + timing.t_rrd_ns);
    }
    if i < acts.len() && acts[i] - t < timing.t_rrd_ns - 1e-12 {
        return Some(acts[i] + timing.t_rrd_ns);
    }
    // Merge `t` with its four predecessors and four successors, then
    // check every five-entry window containing it.
    let lo = i.saturating_sub(4);
    let hi = (i + 4).min(acts.len());
    let mut merged: Vec<f64> = Vec::with_capacity(hi - lo + 1);
    merged.extend_from_slice(&acts[lo..i]);
    let t_pos = merged.len();
    merged.push(t);
    merged.extend_from_slice(&acts[i..hi]);
    for w in 0..merged.len().saturating_sub(4) {
        if w <= t_pos && t_pos <= w + 4 {
            let span = merged[w + 4] - merged[w];
            if span < timing.t_faw_ns - 1e-12 {
                return Some(merged[w] + timing.t_faw_ns);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::pcm_ddr3_1600()
    }

    fn breakdown() -> TimeBreakdown {
        TimeBreakdown {
            activate_ns: 40.0,
            sense_ns: 20.0,
            write_ns: 300.0,
            gdl_ns: 10.0,
            precharge_ns: 16.0,
            stall_ns: 0.0,
            ecc_ns: 4.0,
            bus_ns: 50.0,
            mrs_ns: 11.25,
        }
    }

    #[test]
    fn stream_totals_reconcile_with_the_breakdown() {
        for acts in [0, 1, 2, 7] {
            let b = breakdown();
            let s = RequestStream::from_breakdown(&b, acts);
            assert!(
                (s.total_ns() - b.total_ns()).abs() < 1e-9,
                "acts={acts}: stream total {} vs breakdown {}",
                s.total_ns(),
                b.total_ns()
            );
            assert!((s.shared_ns() - b.shared_ns()).abs() < 1e-9);
            assert_eq!(s.activation_steps(), acts.min(MAX_ACT_UNITS));
        }
    }

    #[test]
    fn act_units_are_capped() {
        let s = RequestStream::from_breakdown(&breakdown(), 500);
        assert_eq!(s.activation_steps(), MAX_ACT_UNITS);
        assert!((s.total_ns() - breakdown().total_ns()).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_steps_are_elided() {
        let b = TimeBreakdown {
            activate_ns: 18.3,
            sense_ns: 8.9,
            precharge_ns: 7.8,
            ..TimeBreakdown::default()
        };
        let s = RequestStream::from_breakdown(&b, 1);
        assert!(s.steps().iter().all(|c| c.ns > 0.0));
        assert_eq!(s.steps().len(), 3, "act, sense, precharge");
    }

    #[test]
    fn chained_steps_reserve_the_lane() {
        let b = breakdown();
        let s = RequestStream::from_breakdown(&b, 1);
        let mut tl = ChannelTimeline::new(t());
        let p1 = tl.place(0, 0, &s);
        assert!((p1.start_ns - 0.0).abs() < 1e-12);
        assert!((p1.end_ns - s.total_ns()).abs() < 1e-9);
        // Same lane: chains after the first request.
        let p2 = tl.place(0, 0, &s);
        assert!(p2.start_ns >= p1.end_ns - 1e-9);
        // Different bank: issues in order (not before p2's first command)
        // but overlaps p2's lane work instead of waiting for the lane.
        let p3 = tl.place(0, 1, &s);
        assert!(p3.start_ns >= p2.start_ns - 1e-12, "in-order issue");
        assert!(p3.start_ns < p2.end_ns - 1e-9, "banks overlap");
        assert_eq!(tl.lanes_used(), 2);
    }

    #[test]
    fn shared_steps_serialize_on_the_bus() {
        let b = TimeBreakdown {
            bus_ns: 100.0,
            ..TimeBreakdown::default()
        };
        let s = RequestStream::from_breakdown(&b, 0);
        let mut tl = ChannelTimeline::new(t());
        let p1 = tl.place(0, 0, &s);
        let p2 = tl.place(0, 1, &s);
        let p3 = tl.place(1, 0, &s);
        assert!((p1.end_ns - 100.0).abs() < 1e-9);
        assert!(p2.start_ns >= p1.end_ns - 1e-9, "bus is channel-wide");
        assert!(p3.start_ns >= p2.end_ns - 1e-9, "even across ranks");
        assert!(p2.bus_wait_ns > 0.0 && p3.bus_wait_ns > 0.0);
        assert!((tl.completion_ns() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn lane_work_overlaps_a_busy_bus() {
        // A bus hog must not keep a pure-lane request from starting: the
        // win the fused model cannot see.
        let hog = RequestStream::from_breakdown(
            &TimeBreakdown {
                bus_ns: 1000.0,
                ..TimeBreakdown::default()
            },
            0,
        );
        let lane_only = RequestStream::from_breakdown(
            &TimeBreakdown {
                activate_ns: 18.3,
                sense_ns: 8.9,
                write_ns: 151.1,
                precharge_ns: 7.8,
                ..TimeBreakdown::default()
            },
            1,
        );
        let mut inter = ChannelTimeline::new(t());
        inter.place(0, 0, &hog);
        let pi = inter.place(0, 1, &lane_only);
        let mut fused = ChannelTimeline::new(t());
        fused.place_fused(0, 0, &hog);
        let pf = fused.place_fused(0, 1, &lane_only);
        assert!(
            pi.start_ns < 1.0,
            "interleaved lane work starts under the bus transfer"
        );
        assert!(
            pf.start_ns >= 1000.0 - 1e-9,
            "the fused model serializes the launch behind the bus"
        );
        assert!(inter.completion_ns() < fused.completion_ns());
    }

    #[test]
    fn acts_slot_between_earlier_activations() {
        // One request lays down widely spaced ACTs; a second request's
        // ACT fits in the first gap rather than after the whole train.
        let mut timing = t();
        timing.t_rrd_ns = 10.0;
        timing.t_faw_ns = 40.0;
        let long = RequestStream::from_breakdown(
            &TimeBreakdown {
                activate_ns: 20.0,
                write_ns: 980.0,
                ..TimeBreakdown::default()
            },
            2,
        );
        let quick = RequestStream::from_breakdown(
            &TimeBreakdown {
                activate_ns: 10.0,
                write_ns: 30.0,
                ..TimeBreakdown::default()
            },
            1,
        );
        let mut tl = ChannelTimeline::new(timing.clone());
        let pl = tl.place(0, 0, &long);
        // The long request's two ACT units sit ~500 ns apart.
        assert!(pl.end_ns > 900.0);
        let pq = tl.place(0, 1, &quick);
        assert!(
            pq.start_ns >= 10.0 - 1e-9 && pq.start_ns < 100.0,
            "the quick ACT slots after the first ACT (tRRD), not after \
             the long request's last ACT (got {})",
            pq.start_ns
        );
        assert!(pq.act_stall_ns > 0.0);
    }

    #[test]
    fn tfaw_binds_a_window_of_four() {
        let mut timing = t();
        timing.t_rrd_ns = 10.0;
        timing.t_faw_ns = 400.0;
        let one_act = RequestStream::from_breakdown(
            &TimeBreakdown {
                activate_ns: 18.3,
                write_ns: 20.0,
                ..TimeBreakdown::default()
            },
            1,
        );
        let mut tl = ChannelTimeline::new(timing);
        let mut starts = Vec::new();
        for bank in 0..5 {
            starts.push(tl.place(0, bank, &one_act).start_ns);
        }
        // First four spaced by tRRD; the fifth waits out the window.
        assert!((starts[3] - 30.0).abs() < 1e-9);
        assert!(
            (starts[4] - 400.0).abs() < 1e-9,
            "fifth ACT must wait for tFAW (got {})",
            starts[4]
        );
    }

    #[test]
    fn issue_order_is_monotone() {
        let b = breakdown();
        let s = RequestStream::from_breakdown(&b, 1);
        let mut tl = ChannelTimeline::new(t());
        let mut last = 0.0;
        for bank in 0..6 {
            let p = tl.place(bank % 2, bank, &s);
            assert!(p.start_ns >= last - 1e-12, "in-order issue");
            last = p.start_ns;
        }
    }

    #[test]
    fn fused_placement_reproduces_the_request_granularity_model() {
        let mut timing = t();
        timing.t_rrd_ns = 150.0;
        timing.t_faw_ns = 600.0;
        let s = RequestStream::from_breakdown(
            &TimeBreakdown {
                activate_ns: 23.3,
                sense_ns: 8.9,
                write_ns: 151.1,
                precharge_ns: 15.6,
                ..TimeBreakdown::default()
            },
            1,
        );
        let mut tl = ChannelTimeline::new(timing);
        // Eight one-ACT requests on one rank: launches gate at 0, tRRD,
        // …, then tFAW paces the window: exactly the old model's train.
        let mut expect = [0.0f64; 8];
        for (i, e) in expect.iter_mut().enumerate() {
            *e = if i < 4 {
                i as f64 * 150.0
            } else {
                (i - 3) as f64 * 150.0 + 450.0
            };
        }
        for (bank, &e) in expect.iter().enumerate() {
            let p = tl.place_fused(0, bank as u32, &s);
            assert!(
                (p.start_ns - e).abs() < 1e-9,
                "bank {bank}: start {} vs expected {e}",
                p.start_ns
            );
        }
    }

    #[test]
    fn empty_stream_places_nothing() {
        let s = RequestStream::from_breakdown(&TimeBreakdown::default(), 0);
        let mut tl = ChannelTimeline::new(t());
        assert_eq!(tl.place(0, 0, &s), Placement::default());
        assert_eq!(tl.place_fused(0, 0, &s), Placement::default());
        assert_eq!(tl.lanes_used(), 0);
        assert!((tl.completion_ns() - 0.0).abs() < 1e-12);
    }
}
