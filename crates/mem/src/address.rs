//! Row addressing.
//!
//! Pinatubo classifies an operation by *where its operand rows live*
//! (paper §4.1): same subarray → intra-subarray (the fast, multi-row
//! path); same chip, different subarray or bank → buffer-logic paths;
//! different ranks/channels → must fall back to reads plus host-side
//! logic. [`RowAddr`] carries exactly the coordinates that decide this.

use crate::geometry::MemGeometry;
use std::fmt;

/// The address of one logical (rank-wide) row.
///
/// Chips do not appear: the 8 chips of a rank act in lock-step and a
/// logical row spans all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowAddr {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the (lock-step) chips.
    pub bank: u32,
    /// Subarray within the bank.
    pub subarray: u32,
    /// Row within the subarray.
    pub row: u32,
}

impl RowAddr {
    /// Creates a row address.
    #[must_use]
    pub fn new(channel: u32, rank: u32, bank: u32, subarray: u32, row: u32) -> Self {
        RowAddr {
            channel,
            rank,
            bank,
            subarray,
            row,
        }
    }

    /// Whether the address is valid under `geometry`.
    #[must_use]
    pub fn is_valid(&self, geometry: &MemGeometry) -> bool {
        self.channel < geometry.channels
            && self.rank < geometry.ranks_per_channel
            && self.bank < geometry.banks_per_chip
            && self.subarray < geometry.subarrays_per_bank
            && self.row < geometry.rows_per_subarray
    }

    /// The subarray this row lives in (everything but the row index).
    #[must_use]
    pub fn subarray_id(&self) -> SubarrayId {
        SubarrayId {
            channel: self.channel,
            rank: self.rank,
            bank: self.bank,
            subarray: self.subarray,
        }
    }

    /// Whether two rows share a subarray (intra-subarray op possible).
    #[must_use]
    pub fn same_subarray(&self, other: &RowAddr) -> bool {
        self.subarray_id() == other.subarray_id()
    }

    /// Whether two rows share a bank (inter-subarray op possible).
    #[must_use]
    pub fn same_bank(&self, other: &RowAddr) -> bool {
        self.channel == other.channel && self.rank == other.rank && self.bank == other.bank
    }

    /// Whether two rows share the lock-step chip group (inter-bank op
    /// possible).
    #[must_use]
    pub fn same_chip_group(&self, other: &RowAddr) -> bool {
        self.channel == other.channel && self.rank == other.rank
    }

    /// Linear index in canonical (channel, rank, bank, subarray, row)
    /// order. Inverse of [`RowAddr::from_linear`].
    #[must_use]
    pub fn to_linear(&self, geometry: &MemGeometry) -> u64 {
        let mut idx = u64::from(self.channel);
        idx = idx * u64::from(geometry.ranks_per_channel) + u64::from(self.rank);
        idx = idx * u64::from(geometry.banks_per_chip) + u64::from(self.bank);
        idx = idx * u64::from(geometry.subarrays_per_bank) + u64::from(self.subarray);
        idx * u64::from(geometry.rows_per_subarray) + u64::from(self.row)
    }

    /// Decodes a linear row index in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the geometry's row count.
    #[must_use]
    pub fn from_linear(geometry: &MemGeometry, idx: u64) -> Self {
        assert!(
            idx < geometry.total_rows(),
            "row index {idx} outside the {}-row geometry",
            geometry.total_rows()
        );
        let rows = u64::from(geometry.rows_per_subarray);
        let subs = u64::from(geometry.subarrays_per_bank);
        let banks = u64::from(geometry.banks_per_chip);
        let ranks = u64::from(geometry.ranks_per_channel);
        let row = idx % rows;
        let idx = idx / rows;
        let subarray = idx % subs;
        let idx = idx / subs;
        let bank = idx % banks;
        let idx = idx / banks;
        let rank = idx % ranks;
        let channel = idx / ranks;
        RowAddr {
            channel: channel as u32,
            rank: rank as u32,
            bank: bank as u32,
            subarray: subarray as u32,
            row: row as u32,
        }
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/rk{}/bk{}/sa{}/row{}",
            self.channel, self.rank, self.bank, self.subarray, self.row
        )
    }
}

/// Identifies one subarray (the unit that owns an SA strip, a WD strip and
/// an LWL latch bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubarrayId {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the chips.
    pub bank: u32,
    /// Subarray within the bank.
    pub subarray: u32,
}

impl fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/rk{}/bk{}/sa{}",
            self.channel, self.rank, self.bank, self.subarray
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> MemGeometry {
        MemGeometry::pcm_default()
    }

    #[test]
    fn linear_round_trips() {
        let geometry = g();
        for idx in [0, 1, 1023, 1024, 999_999, geometry.total_rows() - 1] {
            let addr = RowAddr::from_linear(&geometry, idx);
            assert!(addr.is_valid(&geometry));
            assert_eq!(addr.to_linear(&geometry), idx);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn linear_out_of_range_panics() {
        let geometry = g();
        let _ = RowAddr::from_linear(&geometry, geometry.total_rows());
    }

    #[test]
    fn locality_predicates() {
        let a = RowAddr::new(0, 0, 0, 0, 5);
        let same_sub = RowAddr::new(0, 0, 0, 0, 9);
        let same_bank = RowAddr::new(0, 0, 0, 3, 9);
        let same_group = RowAddr::new(0, 0, 7, 3, 9);
        let elsewhere = RowAddr::new(1, 0, 0, 0, 5);

        assert!(a.same_subarray(&same_sub));
        assert!(!a.same_subarray(&same_bank));
        assert!(a.same_bank(&same_bank));
        assert!(!a.same_bank(&same_group));
        assert!(a.same_chip_group(&same_group));
        assert!(!a.same_chip_group(&elsewhere));
    }

    #[test]
    fn validity_respects_every_axis() {
        let geometry = g();
        assert!(RowAddr::new(3, 1, 7, 15, 1023).is_valid(&geometry));
        assert!(!RowAddr::new(4, 0, 0, 0, 0).is_valid(&geometry));
        assert!(!RowAddr::new(0, 2, 0, 0, 0).is_valid(&geometry));
        assert!(!RowAddr::new(0, 0, 8, 0, 0).is_valid(&geometry));
        assert!(!RowAddr::new(0, 0, 0, 16, 0).is_valid(&geometry));
        assert!(!RowAddr::new(0, 0, 0, 0, 1024).is_valid(&geometry));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            RowAddr::new(1, 0, 2, 3, 42).to_string(),
            "ch1/rk0/bk2/sa3/row42"
        );
        assert_eq!(
            RowAddr::new(1, 0, 2, 3, 42).subarray_id().to_string(),
            "ch1/rk0/bk2/sa3"
        );
    }

    #[test]
    fn consecutive_linear_rows_share_a_subarray() {
        // Canonical order keeps a subarray's rows contiguous — the property
        // the subarray-first allocator relies on.
        let geometry = g();
        let a = RowAddr::from_linear(&geometry, 100);
        let b = RowAddr::from_linear(&geometry, 101);
        assert!(a.same_subarray(&b));
    }
}
