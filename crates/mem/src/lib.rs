//! Transaction-level NVM main-memory architecture simulator.
//!
//! This crate models the memory organization of paper Fig. 3 — channels,
//! ranks, lock-step chips, banks, subarrays and mats — together with a
//! DDR-style command interface whose timing and energy are charged from the
//! [`pinatubo_nvm`] parameter tables.
//!
//! Functional state is exact: every materialized row holds its real bits
//! (sparse storage, so an 8 GB address space costs only what is touched).
//! Time and energy are accounted per command into [`stats::MemStats`].
//!
//! The crate deliberately stops at the *chip capability* level: it knows
//! how to multi-activate rows of one subarray and sense them under an
//! OR/AND reference, how to move a row over the global data lines to the
//! global row buffer, and how to burst data over the DDR bus. Deciding
//! *which* of those primitives implements a user's n-row bitwise operation
//! is the job of the `pinatubo-core` engine on top.
//!
//! # Example
//!
//! ```
//! use pinatubo_mem::{MainMemory, MemConfig, RowAddr};
//! use pinatubo_nvm::sense_amp::SenseMode;
//!
//! # fn main() -> Result<(), pinatubo_mem::MemError> {
//! let mut mem = MainMemory::new(MemConfig::pcm_default());
//! let a = RowAddr::new(0, 0, 0, 0, 10);
//! let b = RowAddr::new(0, 0, 0, 0, 11);
//! mem.write_row_over_bus(a, pinatubo_mem::RowData::from_bits(&[true, false, true]))?;
//! mem.write_row_over_bus(b, pinatubo_mem::RowData::from_bits(&[false, false, true]))?;
//! let or = mem.multi_activate_sense(&[a, b], SenseMode::or(2)?, 3)?;
//! assert_eq!(or.bits(3), vec![true, false, true]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod array;
pub mod commands;
pub mod controller;
pub mod geometry;
pub mod interleave;
mod page;
pub mod secded;
pub mod stats;

pub use address::RowAddr;
pub use array::RowData;
pub use commands::{MemCommand, PimConfig};
pub use controller::{
    ChannelDelta, MainMemory, MemConfig, ProtectionMode, ReliabilityConfig, ReliableFanIn,
};
pub use geometry::MemGeometry;
pub use interleave::{ChannelTimeline, CmdKind, CmdStep, Placement, RequestStream};
pub use page::ROWS_PER_PAGE;
pub use stats::{EnergyBreakdown, MemStats, ReliabilityStats, TimeBreakdown};

use pinatubo_nvm::NvmError;
use std::error::Error;
use std::fmt;

/// Errors produced by the memory-architecture layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MemError {
    /// A row address lies outside the configured geometry.
    AddressOutOfRange {
        /// The offending address.
        addr: RowAddr,
    },
    /// A multi-row activation mixed rows from different subarrays, which a
    /// single LWL latch bank cannot hold open together.
    SubarrayMismatch {
        /// First operand (defines the subarray).
        first: RowAddr,
        /// The operand in a different subarray.
        other: RowAddr,
    },
    /// The operation named more columns than one row holds.
    ColsExceedRow {
        /// Columns requested.
        cols: u64,
        /// Bits in one logical row.
        row_bits: u64,
    },
    /// A column count of zero was requested.
    EmptyOperation,
    /// Program-and-verify exhausted its retry budget: some cells refuse to
    /// hold the data (stuck-at defects or worn-out cells).
    UncorrectableWrite {
        /// The row that failed to program.
        addr: RowAddr,
        /// Bits still wrong after the final verify.
        bad_bits: u64,
    },
    /// A protected read kept disagreeing with the row's stored protection
    /// metadata (parity or SEC-DED check bytes) after exhausting its
    /// retry budget.
    UncorrectableRead {
        /// The row whose protection check never accepted a sense.
        addr: RowAddr,
    },
    /// Duplicate sensing of a multi-row activation kept disagreeing after
    /// re-calibration retries — the caller should fall back to the
    /// read-modify-write path.
    SenseUnstable {
        /// First operand row of the unstable activation.
        addr: RowAddr,
        /// Re-sense attempts that still disagreed.
        retries: u32,
    },
    /// A circuit-level limit was hit (fan-in, latch capacity, …).
    Nvm(NvmError),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::AddressOutOfRange { addr } => {
                write!(f, "row address {addr} is outside the configured geometry")
            }
            MemError::SubarrayMismatch { first, other } => write!(
                f,
                "rows {first} and {other} are in different subarrays and cannot be co-activated"
            ),
            MemError::ColsExceedRow { cols, row_bits } => write!(
                f,
                "operation spans {cols} columns but a row holds only {row_bits} bits"
            ),
            MemError::EmptyOperation => write!(f, "operation covers zero columns"),
            MemError::UncorrectableWrite { addr, bad_bits } => write!(
                f,
                "write to row {addr} left {bad_bits} bits wrong after exhausting verify retries"
            ),
            MemError::UncorrectableRead { addr } => write!(
                f,
                "read of row {addr} failed its protection check after exhausting retries"
            ),
            MemError::SenseUnstable { addr, retries } => write!(
                f,
                "multi-row sense at {addr} stayed unstable after {retries} re-calibration retries"
            ),
            MemError::Nvm(e) => write!(f, "circuit limit: {e}"),
        }
    }
}

impl Error for MemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MemError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvmError> for MemError {
    fn from(e: NvmError) -> Self {
        MemError::Nvm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wraps_nvm_source() {
        let err = MemError::from(NvmError::DegenerateFanIn);
        assert!(Error::source(&err).is_some());
        assert!(err.to_string().starts_with("circuit limit"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
