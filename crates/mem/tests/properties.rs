//! Property tests for the memory-architecture layer.
//!
//! The crucial one is the *circuit cross-check*: the controller computes
//! multi-row results word-wise for speed, and this suite pins that shortcut
//! to the analog model — every column of a multi-row sense must equal what
//! the `CurrentSenseAmp` would sense for that column's cells.

use pinatubo_mem::{MainMemory, MemConfig, RowAddr, RowData};
use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode};
use proptest::prelude::*;

fn addr(row: u32) -> RowAddr {
    RowAddr::new(0, 0, 0, 0, row)
}

/// Strategy: `n` operand rows of `cols` bits each.
fn operand_rows() -> impl Strategy<Value = (Vec<Vec<bool>>, bool)> {
    (2usize..=8, 1usize..=96, any::<bool>()).prop_flat_map(|(n, cols, is_and)| {
        let n = if is_and { 2 } else { n };
        (
            prop::collection::vec(prop::collection::vec(any::<bool>(), cols), n),
            Just(is_and),
        )
    })
}

proptest! {
    /// Word-wise multi-row combine in the controller matches per-column
    /// analog sensing in the circuit model.
    #[test]
    fn controller_matches_circuit_sensing((rows, is_and) in operand_rows()) {
        let mut mem = MainMemory::new(MemConfig::pcm_default());
        let sa = CurrentSenseAmp::new(&pinatubo_nvm::technology::Technology::pcm());
        let cols = rows[0].len() as u64;
        let addrs: Vec<RowAddr> = (0..rows.len() as u32).map(addr).collect();
        for (a, bits) in addrs.iter().zip(&rows) {
            mem.poke_row(*a, &RowData::from_bits(bits)).expect("poke");
        }
        let mode = if is_and {
            SenseMode::and(rows.len()).expect("binary AND")
        } else {
            SenseMode::or(rows.len()).expect("OR fan-in >= 2")
        };
        let out = mem.multi_activate_sense(&addrs, mode, cols).expect("sense");
        for c in 0..cols {
            let column: Vec<bool> = rows.iter().map(|r| r[c as usize]).collect();
            let analog = sa.sense_bits(&column, is_and).expect("column sense");
            prop_assert_eq!(out.get(c), analog, "column {}", c);
        }
    }

    /// Reading back what was written yields the same bits for any pattern
    /// and any in-range row.
    #[test]
    fn write_read_round_trip(bits in prop::collection::vec(any::<bool>(), 1..256), row in 0u32..1024) {
        let mut mem = MainMemory::new(MemConfig::pcm_default());
        let data = RowData::from_bits(&bits);
        mem.write_row_local(addr(row), &data).expect("write");
        let back = mem.activate_read(addr(row), bits.len() as u64).expect("read");
        prop_assert_eq!(back.bits(bits.len() as u64), bits);
    }

    /// Time and energy are monotone: doing strictly more work never costs
    /// less.
    #[test]
    fn accounting_is_monotone(cols_small in 1u64..1000, extra in 1u64..100_000) {
        let mut a = MainMemory::new(MemConfig::pcm_default());
        let mut b = MainMemory::new(MemConfig::pcm_default());
        a.activate_read(addr(0), cols_small).expect("small read");
        b.activate_read(addr(0), cols_small + extra).expect("bigger read");
        prop_assert!(b.stats().time_ns >= a.stats().time_ns);
        prop_assert!(b.stats().total_energy_pj() >= a.stats().total_energy_pj());
    }

    /// Linear row indices round-trip through RowAddr for arbitrary indices.
    #[test]
    fn address_round_trip(idx in 0u64..1_000_000) {
        let g = pinatubo_mem::MemGeometry::pcm_default();
        let idx = idx % g.total_rows();
        let a = RowAddr::from_linear(&g, idx);
        prop_assert!(a.is_valid(&g));
        prop_assert_eq!(a.to_linear(&g), idx);
    }

    /// A multi-activation is always cheaper in time than the serial
    /// activations it replaces.
    #[test]
    fn multi_activation_beats_serial(n in 2usize..=128) {
        let mut multi = MainMemory::new(MemConfig::pcm_default());
        let rows: Vec<RowAddr> = (0..n as u32).map(addr).collect();
        multi
            .multi_activate_sense(&rows, SenseMode::or(n).expect("or"), 64)
            .expect("multi");

        let mut serial = MainMemory::new(MemConfig::pcm_default());
        for r in &rows {
            serial.activate_read(*r, 64).expect("serial read");
        }
        prop_assert!(multi.stats().time_ns < serial.stats().time_ns);
    }
}
