//! Randomized tests for the memory-architecture layer.
//!
//! The crucial one is the *circuit cross-check*: the controller computes
//! multi-row results word-wise for speed, and this suite pins that shortcut
//! to the analog model — every column of a multi-row sense must equal what
//! the `CurrentSenseAmp` would sense for that column's cells. Cases are
//! generated with the in-repo seedable [`SimRng`], so runs are
//! deterministic.

use pinatubo_mem::{MainMemory, MemConfig, RowAddr, RowData};
use pinatubo_nvm::rng::SimRng;
use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode};

fn addr(row: u32) -> RowAddr {
    RowAddr::new(0, 0, 0, 0, row)
}

/// Word-wise multi-row combine in the controller matches per-column analog
/// sensing in the circuit model.
#[test]
fn controller_matches_circuit_sensing() {
    let sa = CurrentSenseAmp::new(&pinatubo_nvm::technology::Technology::pcm());
    let mut rng = SimRng::seed_from_u64(0xC1C);
    for _ in 0..128 {
        let is_and = rng.gen_bit();
        let n = if is_and { 2 } else { 2 + rng.gen_index(7) };
        let cols = 1 + rng.gen_index(96);
        let rows: Vec<Vec<bool>> = (0..n)
            .map(|_| (0..cols).map(|_| rng.gen_bit()).collect())
            .collect();

        let mut mem = MainMemory::new(MemConfig::pcm_default());
        let addrs: Vec<RowAddr> = (0..n as u32).map(addr).collect();
        for (a, bits) in addrs.iter().zip(&rows) {
            mem.poke_row(*a, &RowData::from_bits(bits)).expect("poke");
        }
        let mode = if is_and {
            SenseMode::and(n).expect("binary AND")
        } else {
            SenseMode::or(n).expect("OR fan-in >= 2")
        };
        let out = mem
            .multi_activate_sense(&addrs, mode, cols as u64)
            .expect("sense");
        for c in 0..cols {
            let column: Vec<bool> = rows.iter().map(|r| r[c]).collect();
            let analog = sa.sense_bits(&column, is_and).expect("column sense");
            assert_eq!(out.get(c as u64), analog, "column {c}");
        }
    }
}

/// Reading back what was written yields the same bits for any pattern and
/// any in-range row.
#[test]
fn write_read_round_trip() {
    let mut rng = SimRng::seed_from_u64(0x77);
    for _ in 0..64 {
        let len = 1 + rng.gen_index(255);
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
        let row = rng.gen_range_u64(0, 1024) as u32;
        let mut mem = MainMemory::new(MemConfig::pcm_default());
        let data = RowData::from_bits(&bits);
        mem.write_row_local(addr(row), data).expect("write");
        let back = mem.activate_read(addr(row), len as u64).expect("read");
        assert_eq!(back.bits(len as u64), bits);
    }
}

/// Time and energy are monotone: doing strictly more work never costs less.
#[test]
fn accounting_is_monotone() {
    let mut rng = SimRng::seed_from_u64(0xACC);
    for _ in 0..64 {
        let cols_small = 1 + rng.gen_range_u64(0, 999);
        let extra = 1 + rng.gen_range_u64(0, 99_999);
        let mut a = MainMemory::new(MemConfig::pcm_default());
        let mut b = MainMemory::new(MemConfig::pcm_default());
        a.activate_read(addr(0), cols_small).expect("small read");
        b.activate_read(addr(0), cols_small + extra)
            .expect("bigger read");
        assert!(b.stats().time_ns >= a.stats().time_ns);
        assert!(b.stats().total_energy_pj() >= a.stats().total_energy_pj());
    }
}

/// Linear row indices round-trip through RowAddr for arbitrary indices.
#[test]
fn address_round_trip() {
    let g = pinatubo_mem::MemGeometry::pcm_default();
    let mut rng = SimRng::seed_from_u64(0xAD2);
    for _ in 0..2048 {
        let idx = rng.gen_range_u64(0, g.total_rows());
        let a = RowAddr::from_linear(&g, idx);
        assert!(a.is_valid(&g));
        assert_eq!(a.to_linear(&g), idx);
    }
    // The boundary indices as well.
    for idx in [0, g.total_rows() - 1] {
        assert_eq!(RowAddr::from_linear(&g, idx).to_linear(&g), idx);
    }
}

/// A multi-activation is always cheaper in time than the serial activations
/// it replaces.
#[test]
fn multi_activation_beats_serial() {
    for n in [2usize, 3, 5, 8, 17, 33, 64, 100, 128] {
        let mut multi = MainMemory::new(MemConfig::pcm_default());
        let rows: Vec<RowAddr> = (0..n as u32).map(addr).collect();
        multi
            .multi_activate_sense(&rows, SenseMode::or(n).expect("or"), 64)
            .expect("multi");

        let mut serial = MainMemory::new(MemConfig::pcm_default());
        for r in &rows {
            serial.activate_read(*r, 64).expect("serial read");
        }
        assert!(multi.stats().time_ns < serial.stats().time_ns, "fan-in {n}");
    }
}
