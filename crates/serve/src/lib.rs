//! PIM-as-a-service: a multi-tenant serving layer over one
//! [`pinatubo_runtime::PimSystem`].
//!
//! The paper's pitch is bulk bitwise throughput from inside the NVM
//! arrays; a production deployment serves that throughput to many
//! concurrent clients over one shared memory. This crate is that front
//! end for the simulator:
//!
//! * [`PimServer`] — tenant registry and setup: per-tenant row quotas
//!   enforced through the allocator, wear-aware cross-tenant placement
//!   steering `ChannelRotate` groups onto the least-worn channel.
//! * [`ServeSession`] — the serving phase: bounded per-channel admission
//!   queues (a full queue pushes back on the submitting tenant), a
//!   deterministic deficit weighted round-robin scheduler multiplexing
//!   admitted batches onto the [`pinatubo_runtime::ExecSession`] worker
//!   pool, and per-tenant ledgers with p50/p99/max batch latency.
//! * [`workload`] — the mixed tenant streams (database filters, BFS
//!   frontier steps, bit-serial integer kernels) plus
//!   [`workload::replay_serial`], which re-executes a served run one
//!   batch at a time so harnesses can pin bit/stats/ledger parity.
//!
//! Every scheduling decision is a pure function of the submission
//! sequence — never of wall-clock or worker count — so a served run is
//! reproducible and its parity against serial execution is exact.
//!
//! # Example
//!
//! ```
//! use pinatubo_runtime::{MappingPolicy, PimSystem};
//! use pinatubo_serve::{PimServer, ServeConfig, TenantConfig};
//! use pinatubo_core::BitwiseOp;
//! use pinatubo_runtime::scheduler::BatchRequest;
//!
//! # fn main() -> Result<(), pinatubo_serve::ServeError> {
//! let sys = PimSystem::pcm_default(MappingPolicy::ChannelRotate);
//! let mut server = PimServer::new(sys, ServeConfig::default());
//! let t = server.register(TenantConfig {
//!     name: "tenant-a".into(),
//!     weight: 1,
//!     row_quota: 16,
//! });
//! let group = server.alloc_group(t, 3, 4096)?;
//! server.store(&group[0], &vec![true; 4096])?;
//! let mut session = server.open();
//! session.submit(
//!     t,
//!     vec![BatchRequest {
//!         op: BitwiseOp::Or,
//!         operands: vec![group[0].clone(), group[1].clone()],
//!         dst: group[2].clone(),
//!     }],
//! )?;
//! let report = session.finish()?;
//! assert_eq!(report.tenants[0].batches_completed, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod server;
pub mod stats;
pub mod workload;

pub use server::{PimServer, ServeConfig, ServeError, ServeSession, TenantConfig, TenantId};
pub use stats::{DispatchRecord, LatencyStats, ServeReport, TenantReport};
pub use workload::{TenantKind, TenantSpec, TenantStream};
