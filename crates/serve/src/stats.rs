//! Per-tenant serving statistics: counters, latency percentiles and the
//! replayable logs a correctness harness needs to reproduce a served run
//! serially.

use pinatubo_runtime::scheduler::BatchRequest;
use std::sync::Arc;

/// Latency percentiles over one tenant's per-batch samples (admission to
/// the covering sync), in nanoseconds of host wall-clock. Latencies feed
/// reporting only — never scheduling decisions — so they do not perturb
/// the served run's determinism.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Completed batches sampled.
    pub count: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 99th-percentile latency (nearest-rank on the sorted samples).
    pub p99_ns: u64,
    /// Worst observed latency.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Summarizes a sample set; all-zero when it is empty.
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: u64| -> u64 {
            // Nearest-rank percentile over n sorted samples:
            // idx = ceil(p/100 * n) - 1.
            let idx = (p * sorted.len() as u64).div_ceil(100).max(1) - 1;
            sorted[idx as usize]
        };
        LatencyStats {
            count: sorted.len() as u64,
            p50_ns: rank(50),
            p99_ns: rank(99),
            max_ns: *sorted.last().expect("non-empty"),
        }
    }
}

/// One tenant's ledger after (or during) a served run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name, as registered.
    pub name: String,
    /// Fair-share weight.
    pub weight: u64,
    /// Row-allocation quota.
    pub row_quota: u64,
    /// Rows currently charged against the quota.
    pub rows_used: u64,
    /// Batches admitted.
    pub batches_submitted: u64,
    /// Batches whose covering sync has completed.
    pub batches_completed: u64,
    /// Requests admitted.
    pub ops_submitted: u64,
    /// Requests completed.
    pub ops_completed: u64,
    /// Submissions rejected because a channel queue was full
    /// (backpressure pushed back on the tenant).
    pub admission_rejections: u64,
    /// Allocations rejected because they would exceed the row quota.
    pub quota_rejections: u64,
    /// High-water mark of the tenant's own in-flight requests
    /// (admitted, not yet completed).
    pub queue_depth_high_water: usize,
    /// Longest number of scheduler rounds any batch waited between
    /// admission and dispatch — the starvation metric (a starved tenant
    /// would grow this without bound).
    pub max_wait_rounds: u64,
    /// Per-batch latency percentiles.
    pub latency: LatencyStats,
}

/// A served run's outcome: global queue bookkeeping plus one
/// [`TenantReport`] per registered tenant, in registration order.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// The per-channel admission bound in force.
    pub queue_capacity: usize,
    /// High-water mark of admitted-but-uncompleted requests per channel;
    /// every entry is `<= queue_capacity` by construction.
    pub channel_queue_high_water: Vec<usize>,
    /// Per-tenant ledgers.
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// Tenants that submitted work but saw none of it complete — the
    /// serving layer's starvation check (empty after any drained run).
    #[must_use]
    pub fn starved_tenants(&self) -> Vec<&str> {
        self.tenants
            .iter()
            .filter(|t| t.batches_submitted > 0 && t.batches_completed < t.batches_submitted)
            .map(|t| t.name.as_str())
            .collect()
    }
}

/// One dispatched batch, in dispatch order: the serial-replay unit. The
/// slab is the exact request list the session executed, shared by
/// reference.
#[derive(Debug, Clone)]
pub struct DispatchRecord {
    /// Registration index of the submitting tenant.
    pub tenant: usize,
    /// The dispatched requests.
    pub requests: Arc<Vec<BatchRequest>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_ns, 50);
        assert_eq!(stats.p99_ns, 99);
        assert_eq!(stats.max_ns, 100);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
        let one = LatencyStats::from_samples(&[7]);
        assert_eq!((one.p50_ns, one.p99_ns, one.max_ns), (7, 7, 7));
    }
}
