//! The serving layer proper: tenant registry, quota-checked wear-aware
//! allocation, bounded per-channel admission queues, and the
//! deficit-weighted round-robin scheduler that multiplexes admitted
//! batches onto one [`ExecSession`] worker pool.

use crate::stats::{DispatchRecord, LatencyStats, ServeReport, TenantReport};
use pinatubo_runtime::microcode::{self, CompileOptions, MicroProgram};
use pinatubo_runtime::scheduler::BatchRequest;
use pinatubo_runtime::{ExecSession, PimBitVec, PimSystem, RuntimeError, TransposedVec};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Handle to a registered tenant (its registration index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub usize);

/// A tenant's service contract.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Display name (also the key in reports).
    pub name: String,
    /// Fair-share weight: a weight-2 tenant earns twice the dispatch
    /// credit per round of a weight-1 tenant. Must be at least 1.
    pub weight: u64,
    /// Maximum rows the tenant may hold allocated at once.
    pub row_quota: u64,
}

/// Serving-layer knobs. Every field feeds deterministic decisions only —
/// two runs with the same config, tenants and submission order dispatch
/// identically regardless of worker count or host speed.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Session worker threads; `0` means one per channel.
    pub workers: usize,
    /// Admission bound: maximum admitted-but-uncompleted requests per
    /// channel. A submission that would push any channel past this is
    /// rejected with [`ServeError::QueueFull`] instead of buffering.
    pub channel_queue_capacity: usize,
    /// Deficit round-robin quantum: dispatch credit (in requests) one
    /// weight unit earns per scheduler round.
    pub quantum: u64,
    /// Rounds between completion syncs: `1` completes (and times) every
    /// dispatched batch at its own round's sync; `K > 1` lets dispatched
    /// work stream through the pool for `K` rounds before the barrier,
    /// trading per-batch latency for throughput. Queue depths only drain
    /// at a sync, so admission backpressure coarsens with `K`. The
    /// cadence is part of the deterministic schedule.
    pub sync_every_rounds: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            channel_queue_capacity: 32,
            quantum: 4,
            sync_every_rounds: 1,
        }
    }
}

/// Serving-layer failures. Admission and quota rejections are normal
/// backpressure — the tenant retries after the queues drain or frees
/// rows — while `Runtime` wraps the underlying executor's errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The tenant handle does not name a registered tenant.
    UnknownTenant(usize),
    /// The allocation would exceed the tenant's row quota.
    QuotaExceeded {
        /// Offending tenant's name.
        tenant: String,
        /// Rows the allocation needed.
        requested_rows: u64,
        /// Rows already held.
        used_rows: u64,
        /// The contract's limit.
        quota_rows: u64,
    },
    /// Admitting the batch would overflow a channel's submission queue.
    QueueFull {
        /// The saturated channel.
        channel: u32,
        /// Its current depth in requests.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// An executor or memory error surfaced by the runtime.
    Runtime(RuntimeError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant handle {id}"),
            ServeError::QuotaExceeded {
                tenant,
                requested_rows,
                used_rows,
                quota_rows,
            } => write!(
                f,
                "tenant {tenant} over row quota: holds {used_rows}, wants {requested_rows} more, quota {quota_rows}"
            ),
            ServeError::QueueFull {
                channel,
                depth,
                capacity,
            } => write!(
                f,
                "channel {channel} submission queue full ({depth}/{capacity} requests)"
            ),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RuntimeError> for ServeError {
    fn from(e: RuntimeError) -> Self {
        ServeError::Runtime(e)
    }
}

/// A batch admitted into a tenant's FIFO, waiting for dispatch credit.
#[derive(Debug)]
struct PendingBatch {
    slab: Arc<Vec<BatchRequest>>,
    /// Requests charged to each channel's admission queue.
    per_channel: Vec<(u32, usize)>,
    /// Dispatch cost in requests (the DRR currency).
    cost: u64,
    admitted_at: Instant,
    admitted_round: u64,
}

/// A dispatched batch whose covering sync has not run yet.
#[derive(Debug)]
struct Dispatched {
    tenant: usize,
    per_channel: Vec<(u32, usize)>,
    requests: u64,
    admitted_at: Instant,
}

#[derive(Debug, Default)]
struct Tenant {
    name: String,
    weight: u64,
    row_quota: u64,
    rows_used: u64,
    deficit: u64,
    pending: VecDeque<PendingBatch>,
    /// Admitted-but-uncompleted requests (pending + dispatched).
    inflight_requests: usize,
    batches_submitted: u64,
    batches_completed: u64,
    ops_submitted: u64,
    ops_completed: u64,
    admission_rejections: u64,
    quota_rejections: u64,
    queue_depth_high_water: usize,
    max_wait_rounds: u64,
    latencies_ns: Vec<u64>,
}

/// Everything but the [`PimSystem`] — split out so a [`ServeSession`]
/// can borrow it mutably alongside the session that borrows the system.
#[derive(Debug)]
struct ServeState {
    cfg: ServeConfig,
    tenants: Vec<Tenant>,
    channels: u32,
    row_bits: u64,
    /// Rows this server has placed on each channel (allocation-pressure
    /// tiebreak for the wear-aware channel choice).
    rows_on_channel: Vec<u64>,
    /// Admitted-but-uncompleted requests per channel.
    channel_depth: Vec<usize>,
    channel_high_water: Vec<usize>,
    rounds: u64,
    dispatch_log: Vec<DispatchRecord>,
    store_log: Vec<(PimBitVec, Vec<bool>)>,
}

impl ServeState {
    fn tenant_mut(&mut self, t: TenantId) -> Result<&mut Tenant, ServeError> {
        self.tenants
            .get_mut(t.0)
            .ok_or(ServeError::UnknownTenant(t.0))
    }

    fn snapshot(&self) -> ServeReport {
        ServeReport {
            rounds: self.rounds,
            queue_capacity: self.cfg.channel_queue_capacity,
            channel_queue_high_water: self.channel_high_water.clone(),
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantReport {
                    name: t.name.clone(),
                    weight: t.weight,
                    row_quota: t.row_quota,
                    rows_used: t.rows_used,
                    batches_submitted: t.batches_submitted,
                    batches_completed: t.batches_completed,
                    ops_submitted: t.ops_submitted,
                    ops_completed: t.ops_completed,
                    admission_rejections: t.admission_rejections,
                    quota_rejections: t.quota_rejections,
                    queue_depth_high_water: t.queue_depth_high_water,
                    max_wait_rounds: t.max_wait_rounds,
                    latency: LatencyStats::from_samples(&t.latencies_ns),
                })
                .collect(),
        }
    }
}

/// The channel a request is charged to for admission accounting: the
/// destination's first channel. For channel-confined requests (the
/// common case under `ChannelRotate` group placement) this is exactly
/// the home channel the session queues it on; a channel-straddling
/// request runs as a parent-side barrier either way, so charging its
/// destination channel keeps the bound conservative.
fn charge_channel(request: &BatchRequest) -> u32 {
    request.dst.rows()[0].channel
}

/// Per-channel request counts of a batch, ascending by channel.
fn batch_channel_profile(requests: &[BatchRequest], channels: u32) -> Vec<(u32, usize)> {
    let mut counts = vec![0usize; channels as usize];
    for r in requests {
        counts[charge_channel(r) as usize] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, n)| n > 0)
        .map(|(c, n)| (c as u32, n))
        .collect()
}

/// The wear-aware channel choice: least total wear first, then least
/// server-placed rows, then lowest index — all deterministic inputs.
fn pick_channel(wear: &[u64], rows_on_channel: &[u64]) -> u32 {
    (0..wear.len())
        .min_by_key(|&c| (wear[c], rows_on_channel[c], c))
        .expect("at least one channel") as u32
}

/// A multi-tenant serving front-end over one [`PimSystem`].
///
/// Setup phase: [`PimServer::register`] tenants, then allocate and store
/// their data through the quota-checked, wear-aware allocation methods.
/// Serving phase: [`PimServer::open`] a [`ServeSession`], submit batches
/// and advance the scheduler; [`ServeSession::finish`] returns the
/// [`ServeReport`]. The dispatch and store logs accumulated along the
/// way let a harness replay the exact same run serially for parity
/// checks (see [`crate::workload::replay_serial`]).
#[derive(Debug)]
pub struct PimServer {
    system: PimSystem,
    state: ServeState,
}

impl PimServer {
    /// Wraps `system` in a serving layer. Wear-aware placement steers
    /// `ChannelRotate` allocation; other mapping policies still get
    /// quotas and scheduling but place rows wherever the policy says.
    #[must_use]
    pub fn new(system: PimSystem, cfg: ServeConfig) -> Self {
        assert!(
            cfg.channel_queue_capacity >= 1,
            "queue capacity must be >= 1"
        );
        assert!(cfg.quantum >= 1, "quantum must be >= 1");
        assert!(cfg.sync_every_rounds >= 1, "sync cadence must be >= 1");
        let geometry = system.engine().memory().geometry();
        let channels = geometry.channels;
        let row_bits = geometry.logical_row_bits();
        PimServer {
            system,
            state: ServeState {
                cfg,
                tenants: Vec::new(),
                channels,
                row_bits,
                rows_on_channel: vec![0; channels as usize],
                channel_depth: vec![0; channels as usize],
                channel_high_water: vec![0; channels as usize],
                rounds: 0,
                dispatch_log: Vec::new(),
                store_log: Vec::new(),
            },
        }
    }

    /// Registers a tenant; the returned handle indexes reports too.
    ///
    /// # Panics
    ///
    /// Panics on a zero weight (it would never earn dispatch credit).
    pub fn register(&mut self, cfg: TenantConfig) -> TenantId {
        assert!(cfg.weight >= 1, "tenant weight must be >= 1");
        self.state.tenants.push(Tenant {
            name: cfg.name,
            weight: cfg.weight,
            row_quota: cfg.row_quota,
            ..Tenant::default()
        });
        TenantId(self.state.tenants.len() - 1)
    }

    /// Quota-checked, wear-aware group allocation: the group lands on
    /// the channel with the least total wear (ties: least server-placed
    /// rows, then lowest index).
    ///
    /// # Errors
    ///
    /// [`ServeError::QuotaExceeded`] (counted against the tenant) if the
    /// group would push the tenant past its row quota; otherwise any
    /// allocator error.
    pub fn alloc_group(
        &mut self,
        t: TenantId,
        count: usize,
        len_bits: u64,
    ) -> Result<Vec<PimBitVec>, ServeError> {
        let rows_needed = count as u64 * len_bits.div_ceil(self.state.row_bits);
        self.charge_quota(t, rows_needed)?;
        let channel = pick_channel(&self.system.channel_wear(), &self.state.rows_on_channel);
        let group = match self.system.alloc_group_on_channel(channel, count, len_bits) {
            Ok(g) => g,
            Err(e) => {
                self.state.tenants[t.0].rows_used -= rows_needed;
                return Err(e.into());
            }
        };
        self.settle_placement(t, rows_needed, &group);
        Ok(group)
    }

    /// Quota-checked transposed allocation for µ-program operands (the
    /// planes place as one group; see [`PimSystem::alloc_transposed`]).
    ///
    /// # Errors
    ///
    /// As [`PimServer::alloc_group`].
    pub fn alloc_transposed(
        &mut self,
        t: TenantId,
        lanes: u64,
        width_bits: u32,
    ) -> Result<TransposedVec, ServeError> {
        let rows_needed = u64::from(width_bits) * lanes.div_ceil(self.state.row_bits);
        self.charge_quota(t, rows_needed)?;
        let channel = pick_channel(&self.system.channel_wear(), &self.state.rows_on_channel);
        let vec = match self
            .system
            .alloc_transposed_on_channel(channel, lanes, width_bits)
        {
            Ok(v) => v,
            Err(e) => {
                self.state.tenants[t.0].rows_used -= rows_needed;
                return Err(e.into());
            }
        };
        self.settle_placement(t, rows_needed, vec.planes());
        Ok(vec)
    }

    /// Compiles µ-programs for a tenant, charging the compiler's scratch
    /// planes against the tenant's quota, and returns the request list
    /// ready for [`ServeSession::submit`] (re-submittable every round).
    ///
    /// # Errors
    ///
    /// [`ServeError::QuotaExceeded`] if the scratch would exceed the
    /// quota (the scratch is released again); otherwise compile errors.
    pub fn compile(
        &mut self,
        t: TenantId,
        programs: &[MicroProgram],
        opts: CompileOptions,
    ) -> Result<Vec<BatchRequest>, ServeError> {
        self.state.tenant_mut(t)?;
        let free_before = self.system.allocator().free_rows();
        let batch = microcode::compile(programs, opts, &mut self.system)?;
        let scratch_rows = free_before - self.system.allocator().free_rows();
        let tenant = &mut self.state.tenants[t.0];
        if tenant.rows_used + scratch_rows > tenant.row_quota {
            tenant.quota_rejections += 1;
            let (used_rows, quota_rows, name) =
                (tenant.rows_used, tenant.row_quota, tenant.name.clone());
            batch.release(&mut self.system);
            return Err(ServeError::QuotaExceeded {
                tenant: name,
                requested_rows: scratch_rows,
                used_rows,
                quota_rows,
            });
        }
        tenant.rows_used += scratch_rows;
        Ok(batch.requests().to_vec())
    }

    /// Releases a tenant's vectors back to the pool and refunds the
    /// quota by the rows actually freed.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] on a stale handle.
    pub fn release(&mut self, t: TenantId, vecs: &[PimBitVec]) -> Result<u64, ServeError> {
        self.state.tenant_mut(t)?;
        for v in vecs {
            for r in v.rows() {
                self.state.rows_on_channel[r.channel as usize] =
                    self.state.rows_on_channel[r.channel as usize].saturating_sub(1);
            }
        }
        let freed = self.system.release_vecs(vecs.iter()) as u64;
        let tenant = &mut self.state.tenants[t.0];
        tenant.rows_used = tenant.rows_used.saturating_sub(freed);
        Ok(freed)
    }

    /// Stores bits into a vector (uncharged setup traffic) and records
    /// the write in the replay log for serial parity harnesses.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::store`].
    pub fn store(&mut self, vec: &PimBitVec, bits: &[bool]) -> Result<(), ServeError> {
        self.system.store(vec, bits)?;
        self.state.store_log.push((vec.clone(), bits.to_vec()));
        Ok(())
    }

    /// Stores integer lanes into a transposed vector, recording each
    /// plane write in the replay log.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::store_lanes`].
    pub fn store_lanes(&mut self, vec: &TransposedVec, values: &[u64]) -> Result<(), ServeError> {
        for (k, plane) in vec.planes().iter().enumerate() {
            let bits: Vec<bool> = values.iter().map(|&v| v >> k & 1 == 1).collect();
            self.store(plane, &bits)?;
        }
        Ok(())
    }

    /// Read-only view of the underlying system (loads, stats, wear).
    #[must_use]
    pub fn system(&self) -> &PimSystem {
        &self.system
    }

    /// Unwraps the server, returning the system with all served work
    /// applied.
    #[must_use]
    pub fn into_system(self) -> PimSystem {
        self.system
    }

    /// The recorded setup stores, in order (serial-replay input).
    #[must_use]
    pub fn store_log(&self) -> &[(PimBitVec, Vec<bool>)] {
        &self.state.store_log
    }

    /// Every dispatched batch so far, in dispatch order (serial-replay
    /// input).
    #[must_use]
    pub fn dispatch_log(&self) -> &[DispatchRecord] {
        &self.state.dispatch_log
    }

    /// Snapshot of the per-tenant ledgers and queue bookkeeping.
    #[must_use]
    pub fn report(&self) -> ServeReport {
        self.state.snapshot()
    }

    /// Opens the serving session: spawns the worker pool and hands out
    /// the submission/scheduling interface. One session at a time.
    pub fn open(&mut self) -> ServeSession<'_> {
        let PimServer { system, state } = self;
        let workers = if state.cfg.workers == 0 {
            state.channels as usize
        } else {
            state.cfg.workers
        };
        ServeSession {
            session: system.open_session_with_workers(workers),
            state,
            dispatched: Vec::new(),
        }
    }

    fn charge_quota(&mut self, t: TenantId, rows_needed: u64) -> Result<(), ServeError> {
        let tenant = self.state.tenant_mut(t)?;
        if tenant.rows_used + rows_needed > tenant.row_quota {
            tenant.quota_rejections += 1;
            return Err(ServeError::QuotaExceeded {
                tenant: tenant.name.clone(),
                requested_rows: rows_needed,
                used_rows: tenant.rows_used,
                quota_rows: tenant.row_quota,
            });
        }
        tenant.rows_used += rows_needed;
        Ok(())
    }

    fn settle_placement(&mut self, t: TenantId, rows_charged: u64, vecs: &[PimBitVec]) {
        let mut actual = 0u64;
        for v in vecs {
            for r in v.rows() {
                self.state.rows_on_channel[r.channel as usize] += 1;
                actual += 1;
            }
        }
        // Groups can consume more rows than the len-based estimate
        // (page alignment, subarray-straddle skips); charge the truth.
        let tenant = &mut self.state.tenants[t.0];
        tenant.rows_used = tenant.rows_used - rows_charged + actual;
    }
}

/// The serving phase: submissions flow through admission control into
/// per-tenant FIFOs, and [`ServeSession::advance`] runs one deficit
/// round-robin round (credit, dispatch in tenant order, and on the
/// configured cadence a completion sync that retires everything
/// dispatched). All decisions are deterministic in the submission
/// sequence; worker count changes wall-clock only.
pub struct ServeSession<'a> {
    session: ExecSession<'a>,
    state: &'a mut ServeState,
    dispatched: Vec<Dispatched>,
}

impl ServeSession<'_> {
    /// Submits a batch for a tenant. The whole batch is admitted
    /// atomically or rejected: if any channel's queue would overflow,
    /// nothing is enqueued and the tenant sees [`ServeError::QueueFull`]
    /// backpressure (counted as an admission rejection).
    ///
    /// Accepts a plain `Vec` or a pre-built `Arc` slab; retrying a
    /// rejected `Arc` submission is a pointer clone, not a deep copy,
    /// which matters at benchmark rates.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] or [`ServeError::UnknownTenant`].
    pub fn submit(
        &mut self,
        t: TenantId,
        requests: impl Into<Arc<Vec<BatchRequest>>>,
    ) -> Result<(), ServeError> {
        let requests: Arc<Vec<BatchRequest>> = requests.into();
        self.state.tenant_mut(t)?;
        if requests.is_empty() {
            return Ok(());
        }
        let per_channel = batch_channel_profile(&requests, self.state.channels);
        let capacity = self.state.cfg.channel_queue_capacity;
        for &(c, n) in &per_channel {
            let depth = self.state.channel_depth[c as usize];
            if depth + n > capacity {
                self.state.tenants[t.0].admission_rejections += 1;
                return Err(ServeError::QueueFull {
                    channel: c,
                    depth,
                    capacity,
                });
            }
        }
        for &(c, n) in &per_channel {
            let depth = &mut self.state.channel_depth[c as usize];
            *depth += n;
            let hw = &mut self.state.channel_high_water[c as usize];
            *hw = (*hw).max(*depth);
        }
        let cost = requests.len() as u64;
        let tenant = &mut self.state.tenants[t.0];
        tenant.batches_submitted += 1;
        tenant.ops_submitted += cost;
        tenant.inflight_requests += requests.len();
        tenant.queue_depth_high_water = tenant.queue_depth_high_water.max(tenant.inflight_requests);
        tenant.pending.push_back(PendingBatch {
            slab: requests,
            per_channel,
            cost,
            admitted_at: Instant::now(),
            admitted_round: self.state.rounds,
        });
        Ok(())
    }

    /// Runs one scheduler round: every backlogged tenant earns
    /// `weight × quantum` requests of dispatch credit, batches dispatch
    /// in tenant order while credit lasts, and — on every
    /// [`ServeConfig::sync_every_rounds`]-th round — one sync drains the
    /// worker pool and completes (and times) everything dispatched.
    ///
    /// Returns the number of batches completed this round.
    ///
    /// # Errors
    ///
    /// Any executor error surfaced by dispatch or the sync.
    pub fn advance(&mut self) -> Result<usize, ServeError> {
        self.state.rounds += 1;
        let round = self.state.rounds;
        let quantum = self.state.cfg.quantum;
        for tenant in &mut self.state.tenants {
            if tenant.pending.is_empty() {
                // Classic DRR: an idle queue keeps no credit, so a
                // bursty tenant cannot save up and starve the others.
                tenant.deficit = 0;
            } else {
                tenant.deficit += tenant.weight * quantum;
            }
        }
        // Keep passing over the tenants until a full pass dispatches
        // nothing; per-pass order is registration order, so the whole
        // schedule is a pure function of the submission sequence.
        loop {
            let mut dispatched_any = false;
            for idx in 0..self.state.tenants.len() {
                loop {
                    let tenant = &mut self.state.tenants[idx];
                    let Some(front) = tenant.pending.front() else {
                        tenant.deficit = 0;
                        break;
                    };
                    if front.cost > tenant.deficit {
                        break;
                    }
                    let batch = tenant.pending.pop_front().expect("front exists");
                    tenant.deficit -= batch.cost;
                    let wait = round.saturating_sub(batch.admitted_round + 1);
                    tenant.max_wait_rounds = tenant.max_wait_rounds.max(wait);
                    self.session.submit_batch_shared(&batch.slab)?;
                    self.state.dispatch_log.push(DispatchRecord {
                        tenant: idx,
                        requests: Arc::clone(&batch.slab),
                    });
                    self.dispatched.push(Dispatched {
                        tenant: idx,
                        per_channel: batch.per_channel,
                        requests: batch.cost,
                        admitted_at: batch.admitted_at,
                    });
                    dispatched_any = true;
                }
            }
            if !dispatched_any {
                break;
            }
        }
        if round % self.state.cfg.sync_every_rounds == 0 {
            self.complete_sync()
        } else {
            Ok(0)
        }
    }

    /// One completion barrier: drains the worker pool and retires (and
    /// times) every batch dispatched since the last sync.
    fn complete_sync(&mut self) -> Result<usize, ServeError> {
        self.session.sync()?;
        let completed = self.dispatched.len();
        for done in self.dispatched.drain(..) {
            for (c, n) in done.per_channel {
                self.state.channel_depth[c as usize] -= n;
            }
            let latency = u64::try_from(done.admitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let tenant = &mut self.state.tenants[done.tenant];
            tenant.batches_completed += 1;
            tenant.ops_completed += done.requests;
            tenant.inflight_requests -= done.requests as usize;
            tenant.latencies_ns.push(latency);
        }
        Ok(completed)
    }

    /// Mid-serve quota-checked wear-aware allocation (the wear view lags
    /// until the last completion sync — a deterministic point of the
    /// schedule — so the choice is still deterministic).
    ///
    /// # Errors
    ///
    /// As [`PimServer::alloc_group`].
    pub fn alloc_group(
        &mut self,
        t: TenantId,
        count: usize,
        len_bits: u64,
    ) -> Result<Vec<PimBitVec>, ServeError> {
        let rows_needed = count as u64 * len_bits.div_ceil(self.state.row_bits);
        {
            let tenant = self.state.tenant_mut(t)?;
            if tenant.rows_used + rows_needed > tenant.row_quota {
                tenant.quota_rejections += 1;
                return Err(ServeError::QuotaExceeded {
                    tenant: tenant.name.clone(),
                    requested_rows: rows_needed,
                    used_rows: tenant.rows_used,
                    quota_rows: tenant.row_quota,
                });
            }
        }
        let wear = self.session.system().channel_wear();
        let channel = pick_channel(&wear, &self.state.rows_on_channel);
        let group = self
            .session
            .alloc_group_on_channel(channel, count, len_bits)?;
        let mut actual = 0u64;
        for v in &group {
            for r in v.rows() {
                self.state.rows_on_channel[r.channel as usize] += 1;
                actual += 1;
            }
        }
        self.state.tenants[t.0].rows_used += actual;
        Ok(group)
    }

    /// Stores through the session (a sync point) and records the write
    /// in the replay log.
    ///
    /// # Errors
    ///
    /// See [`ExecSession::store`].
    pub fn store(&mut self, vec: &PimBitVec, bits: &[bool]) -> Result<(), ServeError> {
        self.session.store(vec, bits)?;
        self.state.store_log.push((vec.clone(), bits.to_vec()));
        Ok(())
    }

    /// Requests still admitted but not yet completed, across all tenants.
    #[must_use]
    pub fn backlog_requests(&self) -> usize {
        self.state.channel_depth.iter().sum()
    }

    /// Read-only view of the parent system (lags until the last sync).
    #[must_use]
    pub fn system(&self) -> &PimSystem {
        self.session.system()
    }

    /// Drains every tenant FIFO (repeated [`ServeSession::advance`]
    /// rounds), closes the worker pool, and returns the run's report.
    ///
    /// # Errors
    ///
    /// The first executor error hit while draining or closing.
    pub fn finish(mut self) -> Result<ServeReport, ServeError> {
        while self.state.tenants.iter().any(|t| !t.pending.is_empty()) {
            self.advance()?;
        }
        // Retire whatever an off-cadence final round left in flight.
        self.complete_sync()?;
        self.session.close()?;
        Ok(self.state.snapshot())
    }
}
