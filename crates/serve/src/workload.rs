//! Tenant workload builders — the op-stream shapes the serving layer is
//! benched and tested with — plus the serial replay harness that
//! re-executes a served run one batch at a time for parity checks.
//!
//! Every builder allocates through the server (quota-checked, wear-aware
//! placement) and stores through the server (recorded in the replay
//! log), so a fresh system replaying the logs reproduces the served
//! run's bits, statistics and fault-ledger exactly.

use crate::server::{PimServer, ServeError, TenantConfig, TenantId};
use crate::stats::DispatchRecord;
use pinatubo_core::rng::SimRng;
use pinatubo_core::{ArithOp, BitwiseOp};
use pinatubo_runtime::microcode::{CompileOptions, MicroProgram};
use pinatubo_runtime::scheduler::BatchRequest;
use pinatubo_runtime::{PimBitVec, PimSystem};
use std::sync::Arc;

/// The op-stream shapes tenants submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantKind {
    /// Database bitmap filter: AND two predicate columns, OR in a third
    /// (2 requests per batch over a co-located column group).
    Filter,
    /// BFS frontier step: mask out visited vertices from a union of
    /// neighbour masks and fold the frontier into the visited set
    /// (4 requests per batch, ping-ponging two visited vectors).
    BfsFrontier,
    /// Bit-serial integer kernel: a compiled µ-program batch
    /// (`sum = a + b`, `mask = a >= b`), chunked into admission-sized
    /// sub-batches and resubmitted every round.
    IntKernel,
}

/// Largest sub-batch the builders emit, in requests. A compiled
/// µ-program batch concentrates dozens of scratch writes on one channel;
/// submitting it whole would never clear a bounded admission queue, so
/// the builder splits it (order-preserving — the session's channel FIFOs
/// and straddle barriers keep cross-chunk dependencies intact).
pub const MAX_BATCH_REQUESTS: usize = 8;

impl TenantKind {
    /// Display label used in reports and bench tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TenantKind::Filter => "filter",
            TenantKind::BfsFrontier => "bfs",
            TenantKind::IntKernel => "intvec",
        }
    }
}

/// One tenant's workload parameters.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name.
    pub name: String,
    /// Stream shape.
    pub kind: TenantKind,
    /// Fair-share weight.
    pub weight: u64,
    /// Row-allocation quota.
    pub row_quota: u64,
    /// Bit-vector length (lanes for `IntKernel`).
    pub vec_bits: u64,
    /// Batches in the tenant's stream.
    pub batches: usize,
}

/// A registered tenant plus its pre-built submission stream.
#[derive(Debug)]
pub struct TenantStream {
    /// The tenant's handle.
    pub tenant: TenantId,
    /// The workload shape.
    pub kind: TenantKind,
    /// Batches to submit, in order, as shared slabs — resubmitting one
    /// after a [`crate::ServeError::QueueFull`] rejection is an `Arc`
    /// clone, not a deep copy.
    pub batches: Vec<Arc<Vec<BatchRequest>>>,
}

fn random_bits(rng: &mut SimRng, len: u64) -> Vec<bool> {
    (0..len).map(|_| rng.gen_range_u64(0, 2) == 1).collect()
}

/// Registers every spec'd tenant on `server`, allocates and stores its
/// data (quota-checked, wear-aware, replay-logged), and builds its
/// submission stream. Deterministic in `seed` and the spec order.
///
/// # Errors
///
/// Any quota or allocator error while placing tenant data.
pub fn build_streams(
    server: &mut PimServer,
    specs: &[TenantSpec],
    seed: u64,
) -> Result<Vec<TenantStream>, ServeError> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut rng =
                SimRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            let tenant = server.register(TenantConfig {
                name: spec.name.clone(),
                weight: spec.weight,
                row_quota: spec.row_quota,
            });
            let batches = match spec.kind {
                TenantKind::Filter => build_filter(server, tenant, spec, &mut rng)?,
                TenantKind::BfsFrontier => build_bfs(server, tenant, spec, &mut rng)?,
                TenantKind::IntKernel => build_intvec(server, tenant, spec, &mut rng)?,
            };
            Ok(TenantStream {
                tenant,
                kind: spec.kind,
                batches,
            })
        })
        .collect()
}

/// Columns c0..c2 plus scratch `t` and output `o`, one co-located group.
/// Batch `i`: `t = c_i & c_{i+1}; o = t | c_{i+2}` (indices mod 3).
fn build_filter(
    server: &mut PimServer,
    tenant: TenantId,
    spec: &TenantSpec,
    rng: &mut SimRng,
) -> Result<Vec<Arc<Vec<BatchRequest>>>, ServeError> {
    let group = server.alloc_group(tenant, 5, spec.vec_bits)?;
    for col in &group[..3] {
        let bits = random_bits(rng, spec.vec_bits);
        server.store(col, &bits)?;
    }
    let (t, o) = (group[3].clone(), group[4].clone());
    Ok((0..spec.batches)
        .map(|i| {
            let c = |k: usize| group[(i + k) % 3].clone();
            Arc::new(vec![
                BatchRequest {
                    op: BitwiseOp::And,
                    operands: vec![c(0), c(1)],
                    dst: t.clone(),
                },
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![t.clone(), c(2)],
                    dst: o.clone(),
                },
            ])
        })
        .collect())
}

/// Neighbour masks m0..m2, visited vectors v0/v1 (ping-pong), scratch
/// `n`/`t` and frontier `f`. Batch `i` (reading `v`, writing `v'`):
/// `n = !v; t = m_i | m_{i+1}; f = t & n; v' = v | f`.
fn build_bfs(
    server: &mut PimServer,
    tenant: TenantId,
    spec: &TenantSpec,
    rng: &mut SimRng,
) -> Result<Vec<Arc<Vec<BatchRequest>>>, ServeError> {
    let group = server.alloc_group(tenant, 8, spec.vec_bits)?;
    for vec in &group[..4] {
        // m0..m2 and the initial visited set.
        let bits = random_bits(rng, spec.vec_bits);
        server.store(vec, &bits)?;
    }
    let (v0, v1) = (group[3].clone(), group[4].clone());
    let (n, t, f) = (group[5].clone(), group[6].clone(), group[7].clone());
    Ok((0..spec.batches)
        .map(|i| {
            let m = |k: usize| group[(i + k) % 3].clone();
            let (v, v_next) = if i % 2 == 0 {
                (v0.clone(), v1.clone())
            } else {
                (v1.clone(), v0.clone())
            };
            Arc::new(vec![
                BatchRequest {
                    op: BitwiseOp::Not,
                    operands: vec![v.clone()],
                    dst: n.clone(),
                },
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![m(0), m(1)],
                    dst: t.clone(),
                },
                BatchRequest {
                    op: BitwiseOp::And,
                    operands: vec![t.clone(), n.clone()],
                    dst: f.clone(),
                },
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![v, f.clone()],
                    dst: v_next,
                },
            ])
        })
        .collect())
}

/// Transposed operands `a`/`b` plus a sum vector and a compare mask; the
/// compiled batch (`sum = a + b`, `mask = a >= b`) is split into
/// [`MAX_BATCH_REQUESTS`]-sized sub-batches — a compiled program piles
/// its scratch writes onto one channel, and an unsplit batch would never
/// fit a bounded admission queue — and the whole chunk train is
/// resubmitted for every round of the stream.
fn build_intvec(
    server: &mut PimServer,
    tenant: TenantId,
    spec: &TenantSpec,
    rng: &mut SimRng,
) -> Result<Vec<Arc<Vec<BatchRequest>>>, ServeError> {
    const WIDTH: u32 = 8;
    let lanes = spec.vec_bits;
    let a = server.alloc_transposed(tenant, lanes, WIDTH)?;
    let b = server.alloc_transposed(tenant, lanes, WIDTH)?;
    let sum = server.alloc_transposed(tenant, lanes, WIDTH)?;
    let mask = server
        .alloc_group(tenant, 1, lanes)?
        .pop()
        .expect("one mask");
    let max = ArithOp::lane_mask(WIDTH);
    let values = |rng: &mut SimRng| -> Vec<u64> {
        (0..lanes).map(|_| rng.gen_range_u64(0, max + 1)).collect()
    };
    server.store_lanes(&a, &values(rng))?;
    server.store_lanes(&b, &values(rng))?;
    let programs = [
        MicroProgram::add(&a, &b, &sum),
        MicroProgram::cmp_ge(&a, &b, &mask),
    ];
    let requests = server.compile(tenant, &programs, CompileOptions::optimized())?;
    let chunks: Vec<Arc<Vec<BatchRequest>>> = requests
        .chunks(MAX_BATCH_REQUESTS)
        .map(|c| Arc::new(c.to_vec()))
        .collect();
    Ok((0..spec.batches)
        .flat_map(|_| chunks.iter().map(Arc::clone))
        .collect())
}

/// Serially re-executes a served run on `reference`: replays the
/// recorded stores, then each dispatched batch in dispatch order through
/// [`PimSystem::execute_batch_serial`]. With the same memory config the
/// reference ends bit- and ledger-identical to the served system, which
/// is exactly what the parity checks assert.
///
/// # Errors
///
/// Any store or execution error on the reference system.
pub fn replay_serial(
    reference: &mut PimSystem,
    stores: &[(PimBitVec, Vec<bool>)],
    dispatches: &[DispatchRecord],
) -> Result<(), ServeError> {
    for (vec, bits) in stores {
        reference.store(vec, bits)?;
    }
    for record in dispatches {
        reference.execute_batch_serial(&record.requests)?;
    }
    Ok(())
}
