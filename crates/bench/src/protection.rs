//! Shared ladder-vs-ECC protection-mode comparison workload.
//!
//! One fixed-seed scenario driven three times — [`ProtectionMode::None`],
//! [`ProtectionMode::Parity`], [`ProtectionMode::SecDed`] — so the fault
//! binaries can report what each read-path rung costs and what it lets
//! through. The workload stores charged rows with write verification off
//! (stuck-at corruption must *land* for the read path to have anything to
//! do) and then reads every row back:
//!
//! * `None` accepts everything — every corrupted row is a silent escape.
//! * `Parity` detects odd-weight words (the retry ladder then fails them
//!   explicitly, stuck faults being deterministic) but aliases on words
//!   with an even number of flips, which escape silently.
//! * `SecDed` corrects single-bit words in place — the read returns the
//!   *intended* data with no ladder involvement — and explicitly fails
//!   double-bit words after the ladder exhausts its retries.
//!
//! Time and energy deltas between the modes measure the protection
//! overhead itself: check-bit array traffic (12.5 % for the (72,64)
//! code), syndrome/encode logic passes, and ladder recalibrations.

use pinatubo_mem::{
    MainMemory, MemConfig, ProtectionMode, ReliabilityConfig, ReliabilityStats, RowAddr, RowData,
};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::rng::SimRng;

/// Outcome of driving the comparison workload under one protection mode.
#[derive(Debug, Clone)]
pub struct ProtectionRun {
    /// The read-path rung this run measured.
    pub mode: ProtectionMode,
    /// Rows stored and read back.
    pub rows: u32,
    /// Bits per row.
    pub row_bits: u64,
    /// Simulated time for the whole store + read sequence.
    pub time_ns: f64,
    /// Share of `time_ns` spent in the ECC XOR tree.
    pub ecc_ns: f64,
    /// Simulated energy for the whole sequence.
    pub energy_pj: f64,
    /// Share of `energy_pj` spent on check-bit traffic + ECC logic.
    pub ecc_pj: f64,
    /// Reads the mode rejected explicitly ([`MemError::UncorrectableRead`]
    /// after the ladder ran dry).
    ///
    /// [`MemError::UncorrectableRead`]: pinatubo_mem::MemError::UncorrectableRead
    pub explicit_read_failures: u64,
    /// Reads accepted whose returned data differs from the intended row —
    /// the escapes a stronger code exists to close.
    pub wrong_accepted_rows: u64,
    /// The run's reliability ledger (consistency is asserted before
    /// returning).
    pub reliability: ReliabilityStats,
}

impl ProtectionRun {
    /// Human label for tables and JSON keys.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self.mode {
            ProtectionMode::None => "none",
            ProtectionMode::Parity => "parity",
            ProtectionMode::SecDed => "secded",
        }
    }
}

/// Drive the comparison workload under `mode`: `rows` charged stores of
/// `row_bits` pseudo-random bits against a stuck-at fault model, then one
/// `activate_read` per row. Same `seed` across modes means the *identical*
/// corruption pattern lands in all three memories — the runs differ only
/// in what the read path does about it.
///
/// # Panics
///
/// Panics if a charged store fails (write verification is forced off, so
/// stores always land) or if the resulting reliability ledger is
/// inconsistent.
#[must_use]
pub fn protection_run(
    mode: ProtectionMode,
    rows: u32,
    row_bits: u64,
    seed: u64,
    p_stuck: f64,
) -> ProtectionRun {
    let mut config = MemConfig::pcm_default();
    config.fault_model = FaultModel::with_seed(seed).with_stuck_at(p_stuck, p_stuck);
    let mut reliability = match mode {
        ProtectionMode::None => ReliabilityConfig::off(),
        ProtectionMode::Parity => ReliabilityConfig::protected(),
        ProtectionMode::SecDed => ReliabilityConfig::protected_secded(),
    };
    reliability.verify_writes = false;
    config.reliability = reliability;
    let mut mem = MainMemory::new(config);

    let mut rng = SimRng::seed_from_u64(seed ^ 0xDA7A);
    let intended: Vec<RowData> = (0..rows)
        .map(|_| (0..row_bits).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    for (r, data) in intended.iter().enumerate() {
        mem.write_row_over_bus(RowAddr::new(0, 0, 0, 0, r as u32), data.clone())
            .expect("unverified charged store always lands");
    }

    let mut explicit_read_failures = 0u64;
    let mut wrong_accepted_rows = 0u64;
    for (r, want) in intended.iter().enumerate() {
        match mem.activate_read(RowAddr::new(0, 0, 0, 0, r as u32), row_bits) {
            Ok(got) => {
                if got != *want {
                    wrong_accepted_rows += 1;
                }
            }
            Err(_) => explicit_read_failures += 1,
        }
    }

    let stats = mem.stats();
    let run = ProtectionRun {
        mode,
        rows,
        row_bits,
        time_ns: stats.time_ns,
        ecc_ns: stats.time.ecc_ns,
        energy_pj: stats.energy.total_pj(),
        ecc_pj: stats.energy.ecc_pj,
        explicit_read_failures,
        wrong_accepted_rows,
        reliability: stats.reliability,
    };
    assert!(
        run.reliability.is_consistent(),
        "{} ledger must close: {:?}",
        run.label(),
        run.reliability
    );
    run
}

/// Run the workload under all three modes and return them in
/// `[None, Parity, SecDed]` order.
#[must_use]
pub fn protection_comparison(
    rows: u32,
    row_bits: u64,
    seed: u64,
    p_stuck: f64,
) -> [ProtectionRun; 3] {
    [
        protection_run(ProtectionMode::None, rows, row_bits, seed, p_stuck),
        protection_run(ProtectionMode::Parity, rows, row_bits, seed, p_stuck),
        protection_run(ProtectionMode::SecDed, rows, row_bits, seed, p_stuck),
    ]
}

/// Print the ladder-vs-ECC comparison as an aligned table.
pub fn print_comparison(runs: &[ProtectionRun; 3]) {
    println!(
        "# Protection modes — {} rows x {} bits, identical stuck-at corruption",
        runs[0].rows, runs[0].row_bits
    );
    println!(
        "{:<8}{:>12}{:>12}{:>10}{:>10}{:>10}{:>10}{:>12}{:>12}",
        "mode",
        "time us",
        "energy nJ",
        "explicit",
        "silent",
        "corr'd",
        "double",
        "retries",
        "wrong rows"
    );
    for run in runs {
        println!(
            "{:<8}{:>12.2}{:>12.2}{:>10}{:>10}{:>10}{:>10}{:>12}{:>12}",
            run.label(),
            run.time_ns / 1e3,
            run.energy_pj / 1e3,
            run.explicit_read_failures,
            run.reliability.silent_wrong_bits,
            run.reliability.ecc_corrected_bits,
            run.reliability.ecc_detected_double,
            run.reliability.sense_retries,
            run.wrong_accepted_rows,
        );
    }
    let [none, parity, secded] = runs;
    println!(
        "secded overhead: time {:+.1}% vs none, {:+.1}% vs parity; energy {:+.1}% vs none, {:+.1}% vs parity",
        (secded.time_ns / none.time_ns - 1.0) * 100.0,
        (secded.time_ns / parity.time_ns - 1.0) * 100.0,
        (secded.energy_pj / none.energy_pj - 1.0) * 100.0,
        (secded.energy_pj / parity.energy_pj - 1.0) * 100.0,
    );
}
