//! Shared harness code for the figure-regeneration binaries.
//!
//! Each `fig*` binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see `EXPERIMENTS.md` for the paper-vs-measured record):
//!
//! | binary | paper figure |
//! |--------|--------------|
//! | `fig5_margins` | Fig. 5/6 — SA reference placement and margins |
//! | `fig9`  | Fig. 9 — OR throughput vs vector length and fan-in |
//! | `fig10` | Fig. 10 — bitwise speedup over SIMD |
//! | `fig11` | Fig. 11 — bitwise energy saving over SIMD |
//! | `fig12` | Fig. 12 — overall application speedup & energy |
//! | `fig13` | Fig. 13 — area overhead and breakdown |
//!
//! `ablation_*` binaries cover the design choices `DESIGN.md` flags.

#![warn(missing_docs)]

pub mod protection;

use pinatubo_apps::AppRun;
use pinatubo_baselines::{
    AcPimExecutor, BitwiseExecutor, ExecReport, PinatuboExecutor, SdramExecutor, SimdCpu,
};

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries — gmean of
/// speedups is only defined for positive ratios.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing is undefined");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Every executor's bitwise-trace cost for one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkEval {
    /// Benchmark name (figure x-axis label).
    pub name: String,
    /// Figure group ("Vector" / "Graph" / "Fastbit").
    pub group: String,
    /// The run being priced.
    pub run: AppRun,
    /// SIMD on PCM (the baseline for AC-PIM and Pinatubo).
    pub simd_pcm: ExecReport,
    /// SIMD on DRAM (the baseline for S-DRAM).
    pub simd_dram: ExecReport,
    /// S-DRAM in-DRAM computation.
    pub sdram: ExecReport,
    /// AC-PIM accelerator-in-memory.
    pub acpim: ExecReport,
    /// Pinatubo limited to 2-row operations.
    pub pinatubo_2: ExecReport,
    /// Pinatubo with full multi-row operation.
    pub pinatubo_128: ExecReport,
}

impl BenchmarkEval {
    /// Prices `run` on every executor (the Fig. 10/11 matrix).
    #[must_use]
    pub fn evaluate(group: &str, run: AppRun) -> Self {
        let footprint = Some(run.footprint_bytes);

        let mut simd_pcm = SimdCpu::with_pcm();
        simd_pcm.set_workload_footprint(footprint);
        let mut simd_dram = SimdCpu::with_dram();
        simd_dram.set_workload_footprint(footprint);
        let mut sdram = SdramExecutor::new();
        sdram.set_workload_footprint(footprint);
        let mut acpim = AcPimExecutor::new();
        let mut pin2 = PinatuboExecutor::two_row();
        let mut pin128 = PinatuboExecutor::multi_row();

        BenchmarkEval {
            name: run.name.clone(),
            group: group.to_owned(),
            simd_pcm: simd_pcm.execute_trace(&run.trace),
            simd_dram: simd_dram.execute_trace(&run.trace),
            sdram: sdram.execute_trace(&run.trace),
            acpim: acpim.execute_trace(&run.trace),
            pinatubo_2: pin2.execute_trace(&run.trace),
            pinatubo_128: pin128.execute_trace(&run.trace),
            run,
        }
    }

    /// Bitwise speedups over the matched SIMD baseline, in figure order
    /// (S-DRAM, AC-PIM, Pinatubo-2, Pinatubo-128). S-DRAM is normalized to
    /// SIMD-on-DRAM, the rest to SIMD-on-PCM, exactly as §6.1 specifies.
    ///
    /// A benchmark whose trace is empty has nothing to compare; its ratios
    /// report as 1.0 rather than 0/0.
    #[must_use]
    pub fn speedups(&self) -> [f64; 4] {
        [
            ratio(self.simd_dram.time_ns, self.sdram.time_ns),
            ratio(self.simd_pcm.time_ns, self.acpim.time_ns),
            ratio(self.simd_pcm.time_ns, self.pinatubo_2.time_ns),
            ratio(self.simd_pcm.time_ns, self.pinatubo_128.time_ns),
        ]
    }

    /// Bitwise energy savings over the matched SIMD baseline, same order.
    #[must_use]
    pub fn energy_savings(&self) -> [f64; 4] {
        [
            ratio(self.simd_dram.energy_pj, self.sdram.energy_pj),
            ratio(self.simd_pcm.energy_pj, self.acpim.energy_pj),
            ratio(self.simd_pcm.energy_pj, self.pinatubo_2.energy_pj),
            ratio(self.simd_pcm.energy_pj, self.pinatubo_128.energy_pj),
        ]
    }

    /// The scalar (non-bitwise) application cost, common to all executors.
    #[must_use]
    pub fn scalar(&self) -> ExecReport {
        let mut cpu = SimdCpu::with_pcm();
        cpu.set_workload_footprint(Some(self.run.footprint_bytes));
        cpu.scalar_report(self.run.scalar_instructions, self.run.scalar_bytes)
    }

    /// Overall application speedup and energy saving vs the SIMD/PCM
    /// baseline for one executor's bitwise report (the Fig. 12 math):
    /// total = scalar + bitwise, both normalized to SIMD.
    #[must_use]
    pub fn overall(&self, bitwise: ExecReport) -> (f64, f64) {
        let scalar = self.scalar();
        let base_time = scalar.time_ns + self.simd_pcm.time_ns;
        let base_energy = scalar.energy_pj + self.simd_pcm.energy_pj;
        (
            base_time / (scalar.time_ns + bitwise.time_ns),
            base_energy / (scalar.energy_pj + bitwise.energy_pj),
        )
    }

    /// Overall speedup/energy for the ideal executor (free bitwise ops).
    #[must_use]
    pub fn overall_ideal(&self) -> (f64, f64) {
        self.overall(ExecReport::zero())
    }
}

impl BenchmarkEval {
    /// Figure row label, `group/name`.
    #[must_use]
    pub fn display(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }
}

/// Runs and prices every Table 1 benchmark (the expensive step shared by
/// Fig. 10/11/12), one worker thread per benchmark. Each worker owns its
/// own simulators and seeded RNG state, so the output is deterministic
/// and identical to [`evaluate_benchmarks_serial`].
#[must_use]
pub fn evaluate_table1() -> Vec<BenchmarkEval> {
    evaluate_benchmarks(pinatubo_apps::Benchmark::table1())
}

/// Applies `f` to every item on its own scoped worker thread, returning
/// results in input order regardless of completion order. The fan-out
/// pattern behind [`evaluate_benchmarks`], generalized so the sweep and
/// ablation binaries share it: workloads are pure functions of their
/// config point, so results are bit-identical to a serial map.
///
/// # Panics
///
/// Propagates a worker's panic (a failing config point is a bug, not an
/// input error).
pub fn parallel_map<T, R>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, item) in results.iter_mut().zip(items) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(item));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled its slot"))
        .collect()
}

/// Prices `benchmarks` in parallel with scoped threads, one worker per
/// config point. Results come back in input order regardless of which
/// worker finishes first.
///
/// # Panics
///
/// Propagates a worker's panic (a failing benchmark is a bug, not an
/// input error).
#[must_use]
pub fn evaluate_benchmarks(benchmarks: Vec<pinatubo_apps::Benchmark>) -> Vec<BenchmarkEval> {
    parallel_map(benchmarks, |b| BenchmarkEval::evaluate(b.group(), b.run()))
}

/// The serial reference for [`evaluate_benchmarks`] (tests assert the two
/// agree bit for bit; the parallel path is the one the binaries use).
#[must_use]
pub fn evaluate_benchmarks_serial(benchmarks: Vec<pinatubo_apps::Benchmark>) -> Vec<BenchmarkEval> {
    benchmarks
        .into_iter()
        .map(|b| BenchmarkEval::evaluate(b.group(), b.run()))
        .collect()
}

/// Formats the Fig. 10 speedup table from precomputed evaluations.
#[must_use]
pub fn fig10_table(evals: &[BenchmarkEval]) -> String {
    comparison_table(
        "Fig. 10 — bitwise speedup normalized to SIMD",
        evals,
        BenchmarkEval::speedups,
    )
}

/// Formats the Fig. 11 energy-saving table from precomputed evaluations.
#[must_use]
pub fn fig11_table(evals: &[BenchmarkEval]) -> String {
    comparison_table(
        "Fig. 11 — bitwise energy saving normalized to SIMD",
        evals,
        BenchmarkEval::energy_savings,
    )
}

fn comparison_table(
    title: &str,
    evals: &[BenchmarkEval],
    metric: impl Fn(&BenchmarkEval) -> [f64; 4],
) -> String {
    let columns = ["S-DRAM", "AC-PIM", "Pinatubo-2", "Pinatubo-128"];
    let mut rows = Vec::new();
    let mut per_executor: [Vec<f64>; 4] = Default::default();
    for eval in evals {
        let values = metric(eval);
        for (bucket, &v) in per_executor.iter_mut().zip(&values) {
            bucket.push(v);
        }
        rows.push((eval.display(), values.to_vec()));
    }
    rows.push((
        "Gmean".to_owned(),
        per_executor.iter().map(|v| geomean(v)).collect(),
    ));
    format_table(title, &columns, &rows)
}

/// Formats both Fig. 12 tables (overall speedup, overall energy saving)
/// from precomputed evaluations; vector rows are skipped (Fig. 12 covers
/// the real applications only).
#[must_use]
pub fn fig12_tables(evals: &[BenchmarkEval]) -> String {
    let columns = ["S-DRAM", "AC-PIM", "Pin-2", "Pin-128", "Ideal"];
    let apps: Vec<&BenchmarkEval> = evals.iter().filter(|e| e.group != "Vector").collect();
    let mut speed_rows = Vec::new();
    let mut energy_rows = Vec::new();
    let mut speed_cols: [Vec<f64>; 5] = Default::default();
    let mut energy_cols: [Vec<f64>; 5] = Default::default();

    for eval in &apps {
        let reports = [eval.sdram, eval.acpim, eval.pinatubo_2, eval.pinatubo_128];
        let mut speeds: Vec<f64> = reports.iter().map(|r| eval.overall(*r).0).collect();
        let mut energies: Vec<f64> = reports.iter().map(|r| eval.overall(*r).1).collect();
        let (ideal_speed, ideal_energy) = eval.overall_ideal();
        speeds.push(ideal_speed);
        energies.push(ideal_energy);
        for (bucket, &v) in speed_cols.iter_mut().zip(&speeds) {
            bucket.push(v);
        }
        for (bucket, &v) in energy_cols.iter_mut().zip(&energies) {
            bucket.push(v);
        }
        speed_rows.push((eval.display(), speeds));
        energy_rows.push((eval.display(), energies));
    }
    speed_rows.push((
        "Gmean".to_owned(),
        speed_cols.iter().map(|v| geomean(v)).collect(),
    ));
    energy_rows.push((
        "Gmean".to_owned(),
        energy_cols.iter().map(|v| geomean(v)).collect(),
    ));

    format!(
        "{}\n{}",
        format_table(
            "Fig. 12 (left) — overall speedup normalized to SIMD",
            &columns,
            &speed_rows,
        ),
        format_table(
            "Fig. 12 (right) — overall energy saving normalized to SIMD",
            &columns,
            &energy_rows,
        )
    )
}

/// `a / b`, defined as 1.0 when both sides are zero (empty traces).
fn ratio(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        1.0
    } else {
        a / b
    }
}

/// Formats a figure table: header + rows of `name | values…`.
#[must_use]
pub fn format_table(title: &str, columns: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:<16}", "benchmark");
    for c in columns {
        let _ = write!(out, "{c:>14}");
    }
    let _ = writeln!(out);
    for (name, values) in rows {
        let _ = write!(out, "{name:<16}");
        for v in values {
            let _ = write!(out, "{:>14}", format_value(*v));
        }
        let _ = writeln!(out);
    }
    out
}

/// Human-scaled number formatting for table cells.
#[must_use]
pub fn format_value(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{v:.3e}")
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_apps::VectorWorkload;

    #[test]
    fn geomean_of_constants_is_the_constant() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn geomean_of_nothing_panics() {
        let _ = geomean(&[]);
    }

    #[test]
    fn evaluation_orders_executors_correctly() {
        // A small multi-row workload: the paper's orderings must hold.
        // (On short-vector workloads S-DRAM and Pinatubo-2 may dip below
        // the SIMD line — full-row granularity and chained write-backs —
        // so the assertions here are orderings, not absolute floors.)
        let run = VectorWorkload::parse("14-12-7s").expect("parses").run();
        let eval = BenchmarkEval::evaluate("Vector", run);
        let [_sdram, acpim, pin2, pin128] = eval.speedups();
        assert!(pin128 > pin2, "multi-row must beat 2-row");
        assert!(pin128 > acpim, "Pinatubo must beat AC-PIM");
        assert!(pin128 > 1.0, "multi-row Pinatubo beats SIMD");
        let savings = eval.energy_savings();
        assert!(savings.iter().all(|&s| s > 1.0), "every PIM saves energy");
    }

    #[test]
    fn overall_is_bounded_by_ideal() {
        let run = VectorWorkload::parse("14-12-7s").expect("parses").run();
        let eval = BenchmarkEval::evaluate("Vector", run);
        let (ideal_speed, ideal_energy) = eval.overall_ideal();
        let (pin_speed, pin_energy) = eval.overall(eval.pinatubo_128);
        assert!(pin_speed <= ideal_speed);
        assert!(pin_energy <= ideal_energy);
        assert!(pin_speed > 1.0);
    }

    #[test]
    fn parallel_evaluation_matches_serial_exactly() {
        // The scoped-thread fan-out must be a pure reordering of work:
        // same benchmarks in, bit-identical tables out.
        let make = || -> Vec<pinatubo_apps::Benchmark> {
            ["12-10-5s", "13-11-6s", "14-12-7s"]
                .iter()
                .map(|spec| {
                    let w = VectorWorkload::parse(spec).expect("parses");
                    pinatubo_apps::Benchmark {
                        name: w.to_string(),
                        kind: pinatubo_apps::BenchmarkKind::Vector(w),
                    }
                })
                .collect()
        };
        let serial = evaluate_benchmarks_serial(make());
        let parallel = evaluate_benchmarks(make());
        assert_eq!(serial.len(), parallel.len());
        assert_eq!(fig10_table(&serial), fig10_table(&parallel));
        assert_eq!(fig11_table(&serial), fig11_table(&parallel));
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name, "input order is preserved");
        }
    }

    #[test]
    fn table_formatting_is_stable() {
        let table = format_table("Demo", &["a", "b"], &[("x".to_owned(), vec![1.5, 20000.0])]);
        assert!(table.contains("# Demo"));
        assert!(table.contains("1.50"));
        assert!(table.contains("2.000e4"));
    }
}
