//! Multi-tenant serving throughput and latency: tenant mixes through the
//! admission-controlled DRR serving layer versus the per-batch barriered
//! executor on the exact same dispatched op stream.
//!
//! Each mix registers N tenants (a rotating blend of database filters,
//! BFS frontier steps and compiled bit-serial integer kernels), places
//! their data wear-aware under per-tenant row quotas, and drives every
//! stream head-of-line through one [`pinatubo_serve::ServeSession`]
//! (bounded per-channel admission queues, deficit weighted round-robin).
//! The serving phase is wall-clock timed from session open to drain; the
//! comparison column re-executes the identical dispatch log batch by
//! batch through [`PimSystem::execute_batch`], which pays the
//! split/absorb barrier and thread spawn on every batch.
//!
//! ```console
//! $ cargo run --release -p pinatubo-bench --bin bench_serve
//! $ cargo run --release -p pinatubo-bench --bin bench_serve -- --smoke
//! ```
//!
//! `--smoke` runs one small mix and asserts correctness only: bit,
//! event-ledger and fault-ledger parity against a serial replay of the
//! served run, zero starved tenants, and per-channel queue depths within
//! the configured bound — **no JSON output**, so CI runners can never
//! overwrite the committed measurement. The full run additionally
//! asserts the acceptance floor: aggregate pooled throughput at least
//! matches the barriered executor on the same stream.

use pinatubo_core::PinatuboConfig;
use pinatubo_mem::{MemConfig, MemStats};
use pinatubo_runtime::{MappingPolicy, PimSystem};
use pinatubo_serve::workload::{self, TenantSpec};
use pinatubo_serve::{PimServer, ServeConfig, ServeError, ServeReport, TenantKind};
use std::collections::BTreeMap;
use std::time::Instant;

fn sys() -> PimSystem {
    PimSystem::new(
        MemConfig::pcm_default(),
        PinatuboConfig::default(),
        MappingPolicy::ChannelRotate,
    )
}

/// The rotating tenant blend every mix uses: filter, BFS, integer
/// kernel, with weights cycling 1..=4.
fn tenant_specs(count: usize, batches: usize) -> Vec<TenantSpec> {
    (0..count)
        .map(|i| {
            let kind = match i % 3 {
                0 => TenantKind::Filter,
                1 => TenantKind::BfsFrontier,
                _ => TenantKind::IntKernel,
            };
            TenantSpec {
                name: format!("{}-{i}", kind.label()),
                kind,
                weight: 1 + (i % 4) as u64,
                row_quota: 96,
                // 2^16-bit vectors: enough model work per request that
                // the round sync amortizes and pooling beats per-batch
                // thread spawns (tiny vectors are pure overhead races).
                vec_bits: 1 << 16,
                batches,
            }
        })
        .collect()
}

/// One mix's measured run: the serving-phase report plus both wall-clock
/// throughput numbers over the identical dispatched stream.
struct MixRun {
    name: &'static str,
    tenants: usize,
    workers: usize,
    report: ServeReport,
    dispatched_batches: usize,
    pooled_bps: f64,
    barriered_bps: f64,
    server: PimServer,
}

/// Runs a mix twice and keeps the better wall-clock number for each
/// side (the dispatch schedule is deterministic, so everything except
/// the timings is identical between repeats). Best-of-N is the standard
/// guard against host scheduling noise in a throughput comparison.
fn run_mix_best(
    name: &'static str,
    tenants: usize,
    batches: usize,
    workers: usize,
    queue_capacity: usize,
) -> MixRun {
    let mut best = run_mix(name, tenants, batches, workers, queue_capacity);
    let second = run_mix(name, tenants, batches, workers, queue_capacity);
    best.pooled_bps = best.pooled_bps.max(second.pooled_bps);
    best.barriered_bps = best.barriered_bps.max(second.barriered_bps);
    best
}

fn run_mix(
    name: &'static str,
    tenants: usize,
    batches: usize,
    workers: usize,
    queue_capacity: usize,
) -> MixRun {
    // Quantum 8: every tenant can afford its largest batch (an
    // 8-request compiled-kernel chunk) each round, so queues drain
    // instead of clogging. Sync every 4 rounds: dispatched work streams
    // through the pool between completion barriers, which is where the
    // pooled session's edge over per-batch barriers comes from.
    let mut server = PimServer::new(
        sys(),
        ServeConfig {
            workers,
            channel_queue_capacity: queue_capacity,
            quantum: 8,
            sync_every_rounds: 4,
        },
    );
    let specs = tenant_specs(tenants, batches);
    let mut streams = workload::build_streams(&mut server, &specs, 0x5EED).expect("build streams");

    // Serving phase: greedy head-of-line submission — every pass each
    // tenant pushes batches until its channel queue fills — then one
    // scheduler round. Timed from open to drained.
    let t0 = Instant::now();
    let mut session = server.open();
    let mut next = vec![0usize; streams.len()];
    loop {
        let mut all_done = true;
        for (i, stream) in streams.iter_mut().enumerate() {
            while next[i] < stream.batches.len() {
                all_done = false;
                match session.submit(stream.tenant, stream.batches[next[i]].clone()) {
                    Ok(()) => next[i] += 1,
                    Err(ServeError::QueueFull { .. }) => break,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }
        if all_done {
            break;
        }
        session.advance().expect("advance");
    }
    let report = session.finish().expect("finish");
    let pooled_elapsed = t0.elapsed().as_secs_f64();
    let dispatched_batches = server.dispatch_log().len();

    // Comparison column: the exact same dispatch stream through the
    // per-batch barriered executor on a fresh identically-configured
    // system (stores replayed untimed first).
    let mut barriered = sys();
    for (vec, bits) in server.store_log() {
        barriered.store(vec, bits).expect("replay store");
    }
    let t0 = Instant::now();
    for record in server.dispatch_log() {
        barriered
            .execute_batch(&record.requests)
            .expect("barriered batch");
    }
    let barriered_elapsed = t0.elapsed().as_secs_f64();

    MixRun {
        name,
        tenants,
        workers,
        report,
        dispatched_batches,
        pooled_bps: dispatched_batches as f64 / pooled_elapsed,
        barriered_bps: dispatched_batches as f64 / barriered_elapsed,
        server,
    }
}

fn assert_close(label: &str, a: f64, b: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= 1e-6 * scale,
        "{label} diverged: {a} vs {b}"
    );
}

fn assert_stats_match(serial: &MemStats, served: &MemStats) {
    assert_eq!(serial.events, served.events, "event counters must match");
    assert_eq!(
        serial.reliability, served.reliability,
        "fault/recovery ledgers must match"
    );
    assert_close("time_ns", serial.time_ns, served.time_ns);
    assert_close(
        "energy_pj",
        serial.energy.total_pj(),
        served.energy.total_pj(),
    );
}

/// Parity, starvation and queue-bound checks over one finished mix.
fn check(run: &MixRun) {
    let mut reference = sys();
    workload::replay_serial(
        &mut reference,
        run.server.store_log(),
        run.server.dispatch_log(),
    )
    .expect("serial replay");
    assert_stats_match(reference.stats(), run.server.system().stats());
    let written: BTreeMap<u64, _> = run
        .server
        .dispatch_log()
        .iter()
        .flat_map(|d| d.requests.iter().map(|r| r.dst.clone()))
        .map(|v| (v.id(), v))
        .collect();
    for (id, vec) in written {
        assert_eq!(
            run.server.system().load(&vec),
            reference.load(&vec),
            "bits diverged from serial replay for vec {id}"
        );
    }
    assert!(
        run.report.starved_tenants().is_empty(),
        "starved tenants: {:?}",
        run.report.starved_tenants()
    );
    for (c, &hw) in run.report.channel_queue_high_water.iter().enumerate() {
        assert!(
            hw <= run.report.queue_capacity,
            "channel {c} queue exceeded its bound: {hw} > {}",
            run.report.queue_capacity
        );
    }
}

/// Per-kind latency summary: tenants of one stream shape pooled.
struct KindSummary {
    kind: &'static str,
    tenants: usize,
    batches: u64,
    p50_ns_median: u64,
    p99_ns_max: u64,
    max_ns: u64,
}

fn summarize_kinds(report: &ServeReport) -> Vec<KindSummary> {
    ["filter", "bfs", "intvec"]
        .into_iter()
        .filter_map(|kind| {
            let of_kind: Vec<_> = report
                .tenants
                .iter()
                .filter(|t| t.name.starts_with(kind))
                .collect();
            if of_kind.is_empty() {
                return None;
            }
            let mut p50s: Vec<u64> = of_kind.iter().map(|t| t.latency.p50_ns).collect();
            p50s.sort_unstable();
            Some(KindSummary {
                kind,
                tenants: of_kind.len(),
                batches: of_kind.iter().map(|t| t.latency.count).sum(),
                p50_ns_median: p50s[p50s.len() / 2],
                p99_ns_max: of_kind.iter().map(|t| t.latency.p99_ns).max().unwrap_or(0),
                max_ns: of_kind.iter().map(|t| t.latency.max_ns).max().unwrap_or(0),
            })
        })
        .collect()
}

fn print_row(run: &MixRun) {
    let rejections: u64 = run
        .report
        .tenants
        .iter()
        .map(|t| t.admission_rejections)
        .sum();
    println!(
        "{:<24} | {:>4} batches | pooled {:>8.0} b/s | barriered {:>8.0} b/s | {:>5.2}x | {:>3} rounds | {:>4} rejections",
        format!("{} (w={})", run.name, run.workers),
        run.dispatched_batches,
        run.pooled_bps,
        run.barriered_bps,
        run.pooled_bps / run.barriered_bps,
        run.report.rounds,
        rejections,
    );
    for k in summarize_kinds(&run.report) {
        println!(
            "    {:<8} {:>2} tenants, {:>4} batches | p50 {:>9} ns | p99 {:>9} ns | max {:>9} ns",
            k.kind, k.tenants, k.batches, k.p50_ns_median, k.p99_ns_max, k.max_ns
        );
    }
}

fn to_json(run: &MixRun) -> String {
    let rejections: u64 = run
        .report
        .tenants
        .iter()
        .map(|t| t.admission_rejections)
        .sum();
    let kinds = summarize_kinds(&run.report)
        .iter()
        .map(|k| {
            format!(
                "        {{\"kind\": \"{}\", \"tenants\": {}, \"batches\": {}, \
                 \"p50_ns_median\": {}, \"p99_ns_max\": {}, \"max_ns\": {}}}",
                k.kind, k.tenants, k.batches, k.p50_ns_median, k.p99_ns_max, k.max_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "    {{\n      \"mix\": \"{}\",\n      \"tenants\": {},\n      \
         \"workers\": {},\n      \"dispatched_batches\": {},\n      \
         \"scheduler_rounds\": {},\n      \"queue_capacity\": {},\n      \
         \"admission_rejections\": {},\n      \
         \"pooled_batches_per_s\": {:.1},\n      \
         \"barriered_batches_per_s\": {:.1},\n      \"ratio\": {:.3},\n      \
         \"latency_by_kind\": [\n{}\n      ]\n    }}",
        run.name,
        run.tenants,
        run.workers,
        run.dispatched_batches,
        run.report.rounds,
        run.report.queue_capacity,
        rejections,
        run.pooled_bps,
        run.barriered_bps,
        run.pooled_bps / run.barriered_bps,
        kinds,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        let run = run_mix("smoke 12-tenant mix", 12, 2, 0, 8);
        check(&run);
        print_row(&run);
        println!("smoke OK (parity/starvation/bounds only; no BENCH_serve.json written)");
        return;
    }

    println!("# Multi-tenant serving: pooled session vs per-batch barriers, same dispatch stream");
    // One worker is the sweet spot at these request sizes (the model
    // work per request is too small for per-channel fan-out to beat the
    // sync barrier); the per-channel-workers row is kept as the sweep
    // point showing exactly that.
    let rows = vec![
        run_mix_best("8 tenants", 8, 4, 1, 32),
        run_mix_best("16 tenants", 16, 4, 1, 32),
        run_mix_best("64 tenants", 64, 3, 1, 32),
        run_mix_best("64 tenants 2 workers", 64, 3, 2, 32),
        run_mix_best("64 tenants per-channel workers", 64, 3, 0, 32),
    ];
    for run in &rows {
        check(run);
        print_row(run);
    }

    // Acceptance floor: pooled serving must at least match the barriered
    // executor in aggregate over every dispatched batch.
    let total_batches: usize = rows.iter().map(|r| r.dispatched_batches).sum();
    let pooled_s: f64 = rows
        .iter()
        .map(|r| r.dispatched_batches as f64 / r.pooled_bps)
        .sum();
    let barriered_s: f64 = rows
        .iter()
        .map(|r| r.dispatched_batches as f64 / r.barriered_bps)
        .sum();
    let aggregate_ratio = barriered_s / pooled_s;
    println!(
        "aggregate: {total_batches} batches, pooled {:.0} b/s vs barriered {:.0} b/s ({aggregate_ratio:.2}x)",
        total_batches as f64 / pooled_s,
        total_batches as f64 / barriered_s,
    );
    assert!(
        aggregate_ratio >= 1.0,
        "pooled serving fell below the barriered executor: {aggregate_ratio:.3}x"
    );

    let json = format!(
        "{{\n  \"definition\": \"Each mix registers N tenants (rotating \
         filter / BFS-frontier / compiled integer-kernel streams, weights \
         cycling 1-4), places their data wear-aware under per-tenant row \
         quotas, and drives every stream head-of-line through one serve \
         session: bounded per-channel admission queues (QueueFull pushes \
         back on the tenant), deterministic deficit weighted round-robin, \
         one sync per round. pooled_batches_per_s is dispatched batches \
         over the wall-clock serving phase (open to drain); \
         barriered_batches_per_s re-executes the identical dispatch log \
         through the per-batch barriered executor on a fresh system. Every \
         mix is asserted bit- and ledger-identical to a serial replay of \
         its dispatch log before being reported. Latency percentiles are \
         nearest-rank over per-batch admission-to-sync wall-clock samples, \
         summarized per stream shape (median of tenant p50s, max of tenant \
         p99s). Throughput is host wall clock and varies run to run; \
         parity and scheduling are deterministic.\",\n  \
         \"aggregate_pooled_over_barriered\": {:.3},\n  \"rows\": [\n{}\n  ]\n}}\n",
        aggregate_ratio,
        rows.iter().map(to_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
