//! Ablation: SA mux ratio.
//!
//! NVM sense amplifiers are large, so adjacent columns share one through a
//! mux (32 in the paper's experiments). The ratio sets how many serial
//! sense passes a full-row operation needs — i.e. where Fig. 9's turning
//! point A sits and how steep the post-A slope is.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin ablation_mux`.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor};
use pinatubo_core::{BitwiseOp, BulkOp, PinatuboConfig};
use pinatubo_mem::MemConfig;

fn main() {
    let op = BulkOp::intra(BitwiseOp::Or, 8, 1 << 19);
    println!("# Ablation — SA mux ratio (8-operand, 2^19-bit OR)");
    println!(
        "{:<10}{:>16}{:>14}{:>14}{:>18}",
        "mux", "bits/pass", "passes", "time (us)", "equiv GB/s"
    );
    // One scoped worker per mux ratio; rows print in input order.
    let rows = pinatubo_bench::parallel_map(vec![8u32, 16, 32, 64], |mux| {
        let mut mem = MemConfig::pcm_default();
        mem.geometry.sa_mux_ratio = mux;
        let bits_per_pass = mem.geometry.bits_per_sense_pass();
        let passes = mem.geometry.sense_passes(1 << 19);
        let mut x = PinatuboExecutor::with_config(
            &format!("Pinatubo/mux{mux}"),
            mem,
            PinatuboConfig::multi_row(),
        );
        let r = x.execute(&op);
        format!(
            "{:<10}{:>16}{:>14}{:>14.2}{:>18.0}",
            mux,
            format!("2^{}", bits_per_pass.trailing_zeros()),
            passes,
            r.time_ns / 1000.0,
            r.throughput_gbps(op.operand_bits())
        )
    });
    for row in rows {
        println!("{row}");
    }
}
