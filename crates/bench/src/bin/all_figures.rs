//! Regenerates Fig. 10, 11 and 12 from a single (expensive) evaluation
//! pass over all Table 1 benchmarks. Fig. 9 and 13 have their own cheap
//! binaries (`fig9`, `fig13`, `fig5_margins`).
//!
//! Run with `cargo run --release -p pinatubo-bench --bin all_figures`.

use pinatubo_bench::{evaluate_table1, fig10_table, fig11_table, fig12_tables};

fn main() {
    let evals = evaluate_table1();
    print!("{}", fig10_table(&evals));
    println!();
    print!("{}", fig11_table(&evals));
    println!();
    print!("{}", fig12_tables(&evals));
}
