//! Table 1: the benchmark/dataset matrix, with each workload's measured
//! composition (operations issued, operand volume, locality mix,
//! footprint) — the concrete form of the paper's benchmark table.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin table1`.

use pinatubo_apps::Benchmark;
use pinatubo_core::{BitwiseOp, OpClass};

fn main() {
    println!("# Table 1 — benchmarks and data sets (measured composition)");
    println!(
        "{:<18}{:>8}{:>14}{:>10}{:>8}{:>8}{:>8}{:>12}",
        "benchmark", "ops", "operand Gb", "intra%", "OR%", "AND%", "XOR/NOT%", "footprint"
    );
    for benchmark in Benchmark::table1() {
        let run = benchmark.run();
        let ops = run.trace.len().max(1) as f64;
        let intra = run
            .trace
            .iter()
            .filter(|o| o.locality == OpClass::IntraSubarray)
            .count() as f64;
        let count_op =
            |kinds: &[BitwiseOp]| run.trace.iter().filter(|o| kinds.contains(&o.op)).count() as f64;
        println!(
            "{:<18}{:>8}{:>14.2}{:>9.0}%{:>7.0}%{:>7.0}%{:>8.0}%{:>9} MB",
            benchmark.to_string(),
            run.trace.len(),
            run.bitwise_operand_bits() as f64 / 1e9,
            100.0 * intra / ops,
            100.0 * count_op(&[BitwiseOp::Or]) / ops,
            100.0 * count_op(&[BitwiseOp::And]) / ops,
            100.0 * count_op(&[BitwiseOp::Xor, BitwiseOp::Not]) / ops,
            run.footprint_bytes >> 20,
        );
    }
    println!();
    println!("Vector workloads contain only OR (per Table 1); Graph and Database");
    println!("exercise all of AND, OR, XOR and INV.");
}
