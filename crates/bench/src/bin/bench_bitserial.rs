//! Bit-serial arithmetic µ-programs: fused vs unfused compilation, and
//! PIM vs the SIMD host baseline.
//!
//! Each row compiles one kernel twice over identical bit-transposed
//! operands:
//!
//! * **unfused** — `CompileOptions::unoptimized()`: every µ-program
//!   lowers its own full-adder ladder, no sharing, no fusion;
//! * **fused** — `CompileOptions::optimized()`: hash-consed CSE shares
//!   carry/borrow chains across the batch's programs, same-op gate
//!   fusion widens activations, and liveness recycles scratch rows.
//!
//! Both executions must produce bit-identical results (also checked
//! against the scalar reference), so the activation and modeled-makespan
//! deltas are pure compiler wins. The `shared` kernel — `Sub`, `CmpGe`,
//! `CmpLt` and `Min` over the same operands, four programs needing one
//! borrow chain — is the pinned shared-subexpression shape: its fused
//! activation count must undercut unfused by at least
//! [`SHARED_MIN_ACTIVATION_CUT`].
//!
//! The SIMD columns price the same kernel on the paper's host CPU model
//! (packed-integer ops, roofline over the cache hierarchy) attached to
//! PCM, with the workload footprint set to the kernel's actual working
//! set — plus the bit-plane ↔ lane-major layout conversion the host pays
//! on the way in and out, since the data's canonical layout is the
//! bit-transposed one PIM computes on in place.
//!
//! ```console
//! $ cargo run --release -p pinatubo-bench --bin bench_bitserial
//! $ cargo run --release -p pinatubo-bench --bin bench_bitserial -- --smoke
//! ```
//!
//! `--smoke` runs the pinned shapes and asserts only correctness and the
//! pinned compiler wins (fused bits == unfused bits == reference, fused
//! requests and activations strictly drop on `shared`, and the
//! activation cut meets the floor) — **no JSON output**, so CI runners
//! can never overwrite the committed measurement.

use pinatubo_baselines::simd::arith_reference;
use pinatubo_baselines::SimdCpu;
use pinatubo_core::rng::SimRng;
use pinatubo_core::ArithOp;
use pinatubo_runtime::microcode::{self, CompileOptions, MicroProgram, TransposedVec};
use pinatubo_runtime::{MappingPolicy, PimBitVec, PimSystem};

/// Minimum fraction of unfused activations the fused compilation must
/// eliminate on the `shared` kernel. The shape is deterministic, so this
/// is a regression pin, not a noisy threshold. (Measured at width 16:
/// ~0.4; the ISSUE floor is 15%.)
const SHARED_MIN_ACTIVATION_CUT: f64 = 0.15;

fn sys() -> PimSystem {
    PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Add,
    CmpGe,
    Max,
    Shared,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Add => "add",
            Kernel::CmpGe => "cmp_ge",
            Kernel::Max => "max",
            Kernel::Shared => "shared",
        }
    }

    /// The arithmetic ops the kernel performs (also the SIMD pricing).
    fn ops(self) -> &'static [ArithOp] {
        match self {
            Kernel::Add => &[ArithOp::Add],
            Kernel::CmpGe => &[ArithOp::CmpGe],
            Kernel::Max => &[ArithOp::Max],
            Kernel::Shared => &[ArithOp::Sub, ArithOp::CmpGe, ArithOp::CmpLt, ArithOp::Min],
        }
    }
}

/// Deterministic operand lanes with the wrap/borrow corners pinned.
fn lane_values(seed: u64, count: usize, width: u32) -> Vec<u64> {
    let max = ArithOp::lane_mask(width);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..count).map(|_| rng.gen_range_u64(0, max) + 1).collect();
    let pins = [0, max, max - 1, 1, max / 2];
    for (slot, pin) in v.iter_mut().zip(pins) {
        *slot = pin;
    }
    v
}

/// A kernel instance on one system: the programs plus every output with
/// its expected value.
struct KernelInstance {
    programs: Vec<MicroProgram>,
    expect_vecs: Vec<(TransposedVec, Vec<u64>)>,
    expect_masks: Vec<(PimBitVec, Vec<bool>)>,
}

fn build_kernel(kernel: Kernel, width: u32, lanes: usize, s: &mut PimSystem) -> KernelInstance {
    let a_values = lane_values(0xA11 ^ u64::from(width), lanes, width);
    let b_values = lane_values(0xB22 ^ lanes as u64, lanes, width);
    let a = s.alloc_transposed(lanes as u64, width).expect("a");
    let b = s.alloc_transposed(lanes as u64, width).expect("b");
    s.store_lanes(&a, &a_values).expect("store a");
    s.store_lanes(&b, &b_values).expect("store b");

    let mut programs = Vec::new();
    let mut expect_vecs = Vec::new();
    let mut expect_masks = Vec::new();
    for &op in kernel.ops() {
        let want = arith_reference(op, &a_values, Some(&b_values), 0, width);
        if op.result_is_mask() {
            let mask = s.alloc(lanes as u64).expect("mask");
            programs.push(match op {
                ArithOp::CmpGe => MicroProgram::cmp_ge(&a, &b, &mask),
                ArithOp::CmpLt => MicroProgram::cmp_lt(&a, &b, &mask),
                _ => unreachable!("mask kernels"),
            });
            expect_masks.push((mask, want.into_iter().map(|v| v != 0).collect()));
        } else {
            let dst = s.alloc_transposed(lanes as u64, width).expect("dst");
            programs.push(match op {
                ArithOp::Add => MicroProgram::add(&a, &b, &dst),
                ArithOp::Sub => MicroProgram::sub(&a, &b, &dst),
                ArithOp::Max => MicroProgram::max(&a, &b, &dst),
                ArithOp::Min => MicroProgram::min(&a, &b, &dst),
                _ => unreachable!("vector kernels"),
            });
            expect_vecs.push((dst, want));
        }
    }
    KernelInstance {
        programs,
        expect_vecs,
        expect_masks,
    }
}

/// One compilation mode's measured run.
struct ModeRun {
    requests: usize,
    live_gates: usize,
    scratch_planes: usize,
    activations: u64,
    makespan_ns: f64,
    pim_time_ns: f64,
    pim_energy_pj: f64,
}

fn run_mode(kernel: Kernel, width: u32, lanes: usize, opts: CompileOptions) -> ModeRun {
    let mut s = sys();
    let instance = build_kernel(kernel, width, lanes, &mut s);
    s.take_stats();
    let batch = microcode::compile(&instance.programs, opts, &mut s).expect("compile");
    let report = batch.execute(&mut s).expect("execute");
    let run = ModeRun {
        requests: batch.requests().len(),
        live_gates: batch.live_gates(),
        scratch_planes: batch.scratch_planes(),
        activations: report.per_op.iter().map(|(_, op)| op.activations).sum(),
        makespan_ns: report.makespan.makespan_ns,
        pim_time_ns: s.stats().time_ns,
        pim_energy_pj: s.stats().total_energy_pj(),
    };
    batch.release(&mut s);
    // Every output must match the scalar reference, in both modes.
    for (v, want) in &instance.expect_vecs {
        assert_eq!(
            &s.load_lanes(v),
            want,
            "{} diverged from reference (width={width}, lanes={lanes}, {opts:?})",
            kernel.name()
        );
    }
    for (m, want) in &instance.expect_masks {
        assert_eq!(
            &s.load(m),
            want,
            "{} mask diverged from reference (width={width}, lanes={lanes}, {opts:?})",
            kernel.name()
        );
    }
    run
}

struct Measurement {
    kernel: Kernel,
    width: u32,
    lanes: usize,
    fused: ModeRun,
    unfused: ModeRun,
    simd_time_ns: f64,
    simd_energy_pj: f64,
    /// Layout conversion the host pays around the kernel: gathering the
    /// bit-transposed inputs into packed lanes and scattering results
    /// back (the data's canonical layout is the PIM-native one).
    simd_convert_time_ns: f64,
    simd_convert_energy_pj: f64,
}

impl Measurement {
    /// Fraction of unfused activations eliminated by fusion + CSE.
    fn activation_cut(&self) -> f64 {
        if self.unfused.activations == 0 {
            0.0
        } else {
            1.0 - self.fused.activations as f64 / self.unfused.activations as f64
        }
    }

    /// Fraction of the unfused modeled makespan eliminated.
    fn makespan_cut(&self) -> f64 {
        if self.unfused.makespan_ns == 0.0 {
            0.0
        } else {
            1.0 - self.fused.makespan_ns / self.unfused.makespan_ns
        }
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"kernel\": \"{}\",\n      \"width_bits\": {},\n      \
             \"lanes\": {},\n      \"programs\": {},\n      \
             \"unfused_requests\": {},\n      \"fused_requests\": {},\n      \
             \"fused_live_gates\": {},\n      \"fused_scratch_planes\": {},\n      \
             \"unfused_activations\": {},\n      \"fused_activations\": {},\n      \
             \"activation_cut\": {:.4},\n      \"unfused_makespan_ns\": {:.3},\n      \
             \"fused_makespan_ns\": {:.3},\n      \"makespan_cut\": {:.4},\n      \
             \"pim_time_ns\": {:.3},\n      \"pim_energy_pj\": {:.3},\n      \
             \"simd_time_ns\": {:.3},\n      \"simd_energy_pj\": {:.3},\n      \
             \"simd_convert_time_ns\": {:.3},\n      \
             \"simd_convert_energy_pj\": {:.3},\n      \
             \"simd_total_time_ns\": {:.3},\n      \
             \"simd_total_energy_pj\": {:.3}\n    }}",
            self.kernel.name(),
            self.width,
            self.lanes,
            self.kernel.ops().len(),
            self.unfused.requests,
            self.fused.requests,
            self.fused.live_gates,
            self.fused.scratch_planes,
            self.unfused.activations,
            self.fused.activations,
            self.activation_cut(),
            self.unfused.makespan_ns,
            self.fused.makespan_ns,
            self.makespan_cut(),
            self.fused.pim_time_ns,
            self.fused.pim_energy_pj,
            self.simd_time_ns,
            self.simd_energy_pj,
            self.simd_convert_time_ns,
            self.simd_convert_energy_pj,
            self.simd_time_ns + self.simd_convert_time_ns,
            self.simd_energy_pj + self.simd_convert_energy_pj,
        )
    }
}

fn measure(kernel: Kernel, width: u32, lanes: usize) -> Measurement {
    let fused = run_mode(kernel, width, lanes, CompileOptions::optimized());
    let unfused = run_mode(kernel, width, lanes, CompileOptions::unoptimized());

    // The SIMD host prices the same kernel with packed-integer ops over
    // its actual working set (two input vectors + the outputs).
    let elem_bytes = u64::from(width.next_power_of_two().max(8)) / 8;
    let footprint = (2 + kernel.ops().len() as u64) * lanes as u64 * elem_bytes;
    let mut cpu = SimdCpu::with_pcm();
    cpu.set_workload_footprint(Some(footprint));
    let (mut simd_time_ns, mut simd_energy_pj) = (0.0, 0.0);
    for &op in kernel.ops() {
        let r = cpu.arith_report(op, lanes as u64, width);
        simd_time_ns += r.time_ns;
        simd_energy_pj += r.energy_pj;
    }

    // Layout conversion: the operands live bit-transposed (the layout
    // the PIM kernel computes on in place), so the host converts each
    // distinct input once and each result back. Mask results are one
    // plane wide.
    let (mut simd_convert_time_ns, mut simd_convert_energy_pj) = (0.0, 0.0);
    for _input in 0..2 {
        let r = cpu.transpose_report(lanes as u64, width);
        simd_convert_time_ns += r.time_ns;
        simd_convert_energy_pj += r.energy_pj;
    }
    for &op in kernel.ops() {
        let out_width = if op.result_is_mask() { 1 } else { width };
        let r = cpu.transpose_report(lanes as u64, out_width);
        simd_convert_time_ns += r.time_ns;
        simd_convert_energy_pj += r.energy_pj;
    }

    Measurement {
        kernel,
        width,
        lanes,
        fused,
        unfused,
        simd_time_ns,
        simd_energy_pj,
        simd_convert_time_ns,
        simd_convert_energy_pj,
    }
}

fn check(m: &Measurement) {
    // Results were pinned to the scalar reference inside run_mode for
    // both modes, so fused == unfused == reference bits already held.
    assert!(
        m.fused.activations <= m.unfused.activations,
        "{}: fusion must never add activations ({} vs {})",
        m.kernel.name(),
        m.fused.activations,
        m.unfused.activations
    );
    assert!(
        m.fused.requests <= m.unfused.requests,
        "{}: fusion must never add requests",
        m.kernel.name()
    );
    assert!(
        m.fused.scratch_planes <= m.fused.live_gates.max(1),
        "{}: liveness recycling must not allocate a slot per gate",
        m.kernel.name()
    );
    if m.kernel == Kernel::Shared {
        assert!(
            m.fused.requests < m.unfused.requests,
            "shared: CSE must strictly drop the request count"
        );
        assert!(
            m.fused.activations < m.unfused.activations,
            "shared: CSE must strictly drop activations"
        );
        assert!(
            m.activation_cut() >= SHARED_MIN_ACTIVATION_CUT,
            "shared: fused activations cut only {:.1}% (pinned >= {:.0}%)",
            m.activation_cut() * 100.0,
            SHARED_MIN_ACTIVATION_CUT * 100.0
        );
    }
}

fn print_row(m: &Measurement) {
    println!(
        "{:<7} w{:<2} x{:<6} | req {:>3} -> {:>3} | acts {:>5} -> {:>5} ({:>5.1}% cut) | makespan {:>9.1} -> {:>9.1} ns | PIM {:>10.1} ns / {:>12.1} pJ | SIMD {:>9.1} ns (+{:>8.1} conv) / {:>12.1} pJ",
        m.kernel.name(),
        m.width,
        m.lanes,
        m.unfused.requests,
        m.fused.requests,
        m.unfused.activations,
        m.fused.activations,
        m.activation_cut() * 100.0,
        m.unfused.makespan_ns,
        m.fused.makespan_ns,
        m.fused.pim_time_ns,
        m.fused.pim_energy_pj,
        m.simd_time_ns,
        m.simd_convert_time_ns,
        m.simd_energy_pj + m.simd_convert_energy_pj,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        for m in [
            measure(Kernel::Shared, 16, 2048),
            measure(Kernel::Add, 8, 1024),
            measure(Kernel::CmpGe, 32, 1024),
        ] {
            check(&m);
            print_row(&m);
        }
        println!("smoke OK (correctness only; no BENCH_bitserial.json written)");
        return;
    }

    let mut rows = Vec::new();
    for kernel in [Kernel::Add, Kernel::CmpGe, Kernel::Max, Kernel::Shared] {
        for width in [8u32, 16, 32] {
            for lanes in [1024usize, 16384] {
                rows.push(measure(kernel, width, lanes));
            }
        }
    }
    println!("# Bit-serial µ-programs: fused vs unfused, PIM vs SIMD");
    for m in &rows {
        check(m);
        print_row(m);
    }

    let json = format!(
        "{{\n  \"definition\": \"Each row compiles the kernel's µ-programs over \
         identical bit-transposed operands twice: unfused (no CSE, no gate \
         fusion) and fused (hash-consed CSE + same-op fusion + scratch \
         liveness). Both runs are verified bit-identical to the scalar \
         reference. activation_cut = 1 - fused_activations / \
         unfused_activations; makespan is the command-interleaved channel \
         model's. The shared kernel (Sub+CmpGe+CmpLt+Min over one operand \
         pair) is the pinned shared-subexpression shape. SIMD columns price \
         the same kernel on the 4-core packed-integer host attached to PCM; \
         simd_convert_* adds the bit-plane <-> lane-major layout conversion \
         the host pays because the data's canonical layout is the \
         bit-transposed one PIM computes on in place (two input gathers + \
         one scatter per result, masks one plane wide), and simd_total_* \
         sums both. All quantities are deterministic model time, not wall \
         clock.\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(Measurement::to_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_bitserial.json", &json).expect("write BENCH_bitserial.json");
    println!("wrote BENCH_bitserial.json");
}
