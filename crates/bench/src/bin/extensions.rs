//! Extension workloads beyond the paper's Table 1: bit-plane image
//! processing and comparative k-mer genomics (both domains the paper's §3
//! motivation names), priced on every executor like the Fig. 10/11 rows.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin extensions`.

use pinatubo_apps::genomics::run_genomics_workload;
use pinatubo_apps::image::run_image_workload;
use pinatubo_apps::AppRun;
use pinatubo_bench::{format_table, BenchmarkEval};
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn run_extension(name: &str, f: impl FnOnce(&mut PimSystem) -> AppRun) -> BenchmarkEval {
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let mut run = f(&mut sys);
    run.name = name.to_owned();
    BenchmarkEval::evaluate("Extension", run)
}

fn main() {
    let evals = vec![
        run_extension("image-512x512", |sys| {
            run_image_workload(512, 512, 16, sys).expect("image workload runs")
        }),
        run_extension("genomics-16", |sys| {
            run_genomics_workload(16, 50_000, sys).expect("genomics workload runs")
        }),
    ];

    let columns = ["S-DRAM", "AC-PIM", "Pinatubo-2", "Pinatubo-128"];
    let speed_rows: Vec<(String, Vec<f64>)> = evals
        .iter()
        .map(|e| (e.display(), e.speedups().to_vec()))
        .collect();
    let energy_rows: Vec<(String, Vec<f64>)> = evals
        .iter()
        .map(|e| (e.display(), e.energy_savings().to_vec()))
        .collect();
    print!(
        "{}",
        format_table(
            "Extensions — bitwise speedup normalized to SIMD",
            &columns,
            &speed_rows,
        )
    );
    println!();
    print!(
        "{}",
        format_table(
            "Extensions — bitwise energy saving normalized to SIMD",
            &columns,
            &energy_rows,
        )
    );
    println!();
    println!("# overall (scalar + bitwise), speedup / energy vs SIMD");
    for eval in &evals {
        let (s, e) = eval.overall(eval.pinatubo_128);
        let (is_, ie) = eval.overall_ideal();
        println!(
            "{:<28} Pinatubo-128 {s:.2}x / {e:.2}x   (ideal {is_:.2}x / {ie:.2}x)",
            eval.display()
        );
    }
}
