//! Ablation: mapping policy.
//!
//! Runs the same bit-vector workload under the PIM-aware subarray-first
//! policy, conventional bank interleaving, and random placement, and
//! reports the resulting locality mix and Pinatubo-128 execution time —
//! the effect behind the `s` vs `r` workloads of Table 1 and the paper's
//! §5 OS support.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin ablation_mapping`.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor};
use pinatubo_core::{BitwiseOp, BulkOp, OpClass};
use pinatubo_mem::{MemGeometry, RowAddr};
use pinatubo_runtime::{MappingPolicy, PimAllocator};

/// Builds a 512-op, 8-operand workload trace under one policy.
fn trace_for(policy: MappingPolicy) -> Vec<BulkOp> {
    let mut allocator = PimAllocator::new(MemGeometry::pcm_default(), policy);
    (0..512)
        .map(|_| {
            let group = allocator.alloc_group(9, 1 << 14).expect("fits");
            let rows: Vec<RowAddr> = group.iter().map(|v| v.rows()[0]).collect();
            BulkOp {
                op: BitwiseOp::Or,
                operand_count: 8,
                bits: 1 << 14,
                locality: OpClass::classify(&rows),
            }
        })
        .collect()
}

fn main() {
    println!("# Ablation — mapping policy (512 ops, 8-operand OR, 2^14-bit vectors)");
    println!(
        "{:<18}{:>8}{:>10}{:>8}{:>8}{:>14}",
        "policy", "intra", "inter-sub", "bank", "host", "Pin-128 (us)"
    );
    // One scoped worker per policy; rows print in input order.
    let rows = pinatubo_bench::parallel_map(
        vec![
            MappingPolicy::SubarrayFirst,
            MappingPolicy::BankInterleave,
            MappingPolicy::random(),
        ],
        |policy| {
            let trace = trace_for(policy);
            let count = |class: OpClass| trace.iter().filter(|o| o.locality == class).count();
            let mut x = PinatuboExecutor::multi_row();
            let r = x.execute_trace(&trace);
            format!(
                "{:<18}{:>8}{:>10}{:>8}{:>8}{:>14.1}",
                policy.to_string(),
                count(OpClass::IntraSubarray),
                count(OpClass::InterSubarray),
                count(OpClass::InterBank),
                count(OpClass::HostFallback),
                r.time_ns / 1000.0
            )
        },
    );
    for row in rows {
        println!("{row}");
    }
}
