//! Fig. 12: overall application speedup and energy saving on the
//! real-world workloads (graph BFS + bitmap database), normalized to the
//! SIMD baseline, including the Ideal (free-bitwise-ops) bound.
//!
//! Expected shape (paper §6.2): Pinatubo almost reaches the Ideal bar;
//! dblp (dense) gains ~1.37×, eswiki/amazon (loose) gain little because
//! scalar "searching for an unvisited bit-vector" dominates; database
//! queries gain ~1.29×.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin fig12`
//! (or `--bin all_figures` to get every figure from one evaluation pass).

use pinatubo_bench::{evaluate_table1, fig12_tables};

fn main() {
    print!("{}", fig12_tables(&evaluate_table1()));
}
