//! Ablation: the multi-row advantage.
//!
//! Executes the same 128-operand, full-row OR under fan-in caps
//! 2…128 and reports simulated time and equivalent bandwidth — the
//! design knob behind Fig. 9's family of curves and the Pinatubo-2 vs
//! Pinatubo-128 split of Fig. 10.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin ablation_fanin`.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor};
use pinatubo_core::{BitwiseOp, BulkOp};

fn main() {
    let op = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
    println!("# Ablation — fan-in cap on a 128-operand, 2^19-bit OR");
    println!(
        "{:<10}{:>14}{:>18}{:>12}",
        "fan-in", "time (us)", "equiv GB/s", "vs cap=2"
    );

    // One scoped worker per fan-in cap; rows print in input order.
    let reports = pinatubo_bench::parallel_map(vec![2usize, 4, 8, 16, 32, 64, 128], |cap| {
        let mut x = PinatuboExecutor::with_fan_in(cap);
        (cap, x.execute(&op))
    });
    let base = reports[0].1.time_ns;
    for (cap, r) in reports {
        println!(
            "{:<10}{:>14.2}{:>18.0}{:>11.1}x",
            cap,
            r.time_ns / 1000.0,
            r.throughput_gbps(op.operand_bits()),
            base / r.time_ns
        );
    }
}
