//! Fig. 10: bitwise-operation speedup over the SIMD baseline for
//! S-DRAM, AC-PIM, Pinatubo-2 and Pinatubo-128 across the Table 1
//! workloads, plus the geometric mean.
//!
//! Expected shape (paper §6.2): S-DRAM occasionally beats Pinatubo-2 on
//! long sequential vectors; AC-PIM trails Pinatubo everywhere;
//! multi-row Pinatubo-128 dominates except on the random-placement
//! workload 14-16-7r, where inter-subarray/bank operations erase the
//! multi-row advantage.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin fig10`
//! (or `--bin all_figures` to get every figure from one evaluation pass).

use pinatubo_bench::{evaluate_table1, fig10_table};

fn main() {
    print!("{}", fig10_table(&evaluate_table1()));
}
