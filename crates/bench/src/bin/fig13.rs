//! Fig. 13: silicon-area overhead — Pinatubo (~0.9%) vs AC-PIM (~6.4%)
//! on the left, Pinatubo's per-component breakdown on the right.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin fig13`.

use pinatubo_nvm::area::AreaModel;

fn main() {
    let model = AreaModel::pcm_65nm();

    println!("# Fig. 13 (left) — area overhead on a 65 nm PCM chip");
    println!("{:<12}{:>10}", "design", "overhead");
    println!("{:<12}{:>9.1}%", "Pinatubo", model.pinatubo_overhead_pct());
    println!("{:<12}{:>9.1}%", "AC-PIM", model.acpim_overhead_pct());

    let b = model.pinatubo_breakdown();
    println!();
    println!("# Fig. 13 (right) — Pinatubo overhead breakdown");
    println!("{:<16}{:>10}", "component", "pct");
    println!("{:<16}{:>9.2}%", "inter-sub", b.inter_subarray_pct);
    println!("{:<16}{:>9.2}%", "inter-bank", b.inter_bank_pct);
    println!("{:<16}{:>9.2}%", "xor", b.xor_pct);
    println!("{:<16}{:>9.2}%", "wl act", b.wl_activation_pct);
    println!("{:<16}{:>9.2}%", "and/or", b.and_or_pct);
    println!("{:<16}{:>9.2}%", "intra-sub total", b.intra_subarray_pct());
    println!("{:<16}{:>9.2}%", "total", b.total_pct());
}
