//! Fault sweep: sense-error rate vs OR fan-in, functional simulator vs
//! analytic yield model (the Fig. 5 reliability view, measured twice).
//!
//! The functional side drives a real [`MainMemory`] with Gaussian process
//! variation injected into every bit-line sense and counts wrong bits
//! against the ground truth (`injected_bit_errors`, detection disabled so
//! the raw physical rate is visible). The analytic side is the
//! Monte-Carlo [`or_error_rate`] the controller's fan-in splitting policy
//! is calibrated from. The two sample the same resistance distribution
//! through entirely different code paths, so agreement here validates the
//! fault-injection plumbing end to end.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin fault_sweep`.
//! Pass `--smoke` for the CI mode: a fixed-seed scenario that exercises
//! the whole detect/retry/split/fallback recovery ladder and asserts the
//! resulting [`ReliabilityStats`] against a pinned snapshot.

use pinatubo_bench::protection::{print_comparison, protection_comparison};
use pinatubo_mem::{
    MainMemory, MemConfig, MemError, ProtectionMode, ReliabilityConfig, ReliableFanIn, RowAddr,
    RowData,
};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::rng::SimRng;
use pinatubo_nvm::sense_amp::SenseMode;
use pinatubo_nvm::technology::Technology;
use pinatubo_nvm::yield_analysis::{or_error_rate, VariationModel};
use pinatubo_runtime::{MappingPolicy, PimSystem};

const SEED: u64 = 0x5EED;

/// Functional error rate: `senses` multi-activations of `fan_in` rows,
/// `cols` columns each. Every column is a trial, but columns of one sense
/// share that event's systematic variation draw (only the per-cell
/// residuals are independent), so the marginal rate matches the analytic
/// sampler while the counting statistics are governed by the number of
/// sense events. Patterns cycle through the same mix as the analytic
/// sampler: all-zeros, one-hot (the worst case for a wide OR), and random
/// fills.
fn functional_error_rate(fan_in: usize, cols: u64, senses: u64) -> (u64, u64) {
    let mut config = MemConfig::pcm_default();
    config.fault_model = FaultModel::with_seed(SEED).with_variation(VariationModel::Gaussian);
    config.reliability = ReliabilityConfig::off();
    let mut mem = MainMemory::new(config);
    let mut pattern_rng = SimRng::seed_from_u64(SEED ^ 0xC01);
    let rows: Vec<RowAddr> = (0..fan_in)
        .map(|r| RowAddr::new(0, 0, 0, 0, r as u32))
        .collect();
    let mode = SenseMode::or(fan_in).expect("fan-in >= 2");
    let mut errors = 0u64;
    for round in 0..senses {
        // Column c of round k is global trial k*cols + c; build each row's
        // image so the per-column bit patterns follow the trial mix.
        let mut images = vec![RowData::zeros(cols); fan_in];
        for c in 0..cols {
            let trial = round * cols + c;
            match trial % 4 {
                0 => {}
                1 => images[(trial as usize / 4) % fan_in].set(c, true),
                _ => {
                    for img in images.iter_mut() {
                        if pattern_rng.gen_bool(0.5) {
                            img.set(c, true);
                        }
                    }
                }
            }
        }
        for (row, img) in rows.iter().zip(&images) {
            mem.poke_row(*row, img).expect("setup poke");
        }
        let before = mem.stats().reliability.injected_bit_errors;
        mem.multi_activate_sense(&rows, mode, cols)
            .expect("fan-in within margin");
        errors += mem.stats().reliability.injected_bit_errors - before;
    }
    (errors, cols * senses)
}

fn sweep(cols: u64, senses: u64, analytic_trials: u64) {
    let tech = Technology::pcm();
    println!(
        "{:<8}{:>10}{:>12}{:>14}{:>12}{:>14}",
        "fan-in", "trials", "func errs", "func rate", "ana errs", "ana rate"
    );
    for fan_in in [2usize, 4, 8, 16, 32, 64, 128] {
        // Errors live in the Gaussian tails near the fan-in cap; spend
        // extra trials there so the comparison has counting statistics.
        let boost = if fan_in >= 64 { 16 } else { 1 };
        let (func_errors, func_trials) = functional_error_rate(fan_in, cols, senses * boost);
        let mut rng = SimRng::seed_from_u64(SEED);
        let ana = or_error_rate(
            &tech,
            fan_in,
            VariationModel::Gaussian,
            analytic_trials * boost,
            &mut rng,
        )
        .expect("valid fan-in");
        println!(
            "{:<8}{:>10}{:>12}{:>14.3e}{:>12}{:>14.3e}",
            fan_in,
            func_trials,
            func_errors,
            func_errors as f64 / func_trials as f64,
            ana.errors,
            ana.error_rate()
        );
    }
}

/// The CI smoke scenario: write flips + violent OR transients against the
/// full protection stack, driven through the runtime so the engine's RMW
/// fallback really runs. Asserts every rung of the recovery ladder fired
/// and that the final counters match the pinned fixed-seed snapshot.
fn smoke() {
    let mut mem = MemConfig::pcm_default();
    mem.fault_model = FaultModel::with_seed(SEED)
        .with_write_flips(5e-4)
        .with_transients(0.0, 0.5, 0.0);
    let mut reliability = ReliabilityConfig::protected();
    reliability.reliable_fan_in = ReliableFanIn::Fixed(4);
    mem.reliability = reliability;
    let mut sys = PimSystem::new(
        mem,
        pinatubo_core::PinatuboConfig::default(),
        MappingPolicy::SubarrayFirst,
    );

    let len = 512usize;
    let vecs = sys.alloc_group(9, len as u64).expect("alloc");
    let mut rng = SimRng::seed_from_u64(SEED);
    let mut expect = vec![false; len];
    for v in &vecs[..8] {
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.3)).collect();
        for (e, b) in expect.iter_mut().zip(&bits) {
            *e |= *b;
        }
        sys.store(v, &bits).expect("store");
    }
    let operands: Vec<_> = vecs[..8].iter().collect();
    let summary = sys
        .or_many(&operands, &vecs[8])
        .expect("protected OR completes via the ladder");
    assert_eq!(sys.load(&vecs[8]), expect, "the result must be correct");

    let r = summary.reliability;
    println!("smoke reliability stats: {r:#?}");
    assert!(r.is_consistent(), "ledger must close: {r:?}");
    assert!(r.fan_in_splits >= 1, "the OR-8 must split at Fixed(4)");
    assert!(r.sense_retries >= 1, "duplicate senses must have retried");
    assert!(r.rmw_fallbacks >= 1, "the engine fallback must have fired");
    assert_eq!(r.silent_wrong_bits, 0, "nothing may corrupt silently");

    // The setup stores run program-and-verify too (outside the op
    // summary); the system-wide ledger must show verify catching flips.
    let total = sys.stats().reliability;
    assert!(total.is_consistent(), "ledger must close: {total:?}");
    assert!(
        total.injected_write_faults >= 1 && total.write_retries >= 1,
        "verify must have caught write flips: {total:?}"
    );
    assert_eq!(total.silent_wrong_bits, 0);

    // Pinned fixed-seed snapshot: any change to the fault stream, the
    // recovery ladder or the stats plumbing shows up here.
    assert_eq!(r.fan_in_splits, 1, "pinned: {r:?}");
    assert_eq!(r.rmw_fallbacks, 1, "pinned: {r:?}");
    assert_eq!(r.sense_retries, 3, "pinned: {r:?}");
    println!("smoke OK");
}

/// The SEC-DED CI smoke scenario: deterministic stuck-at corruption on
/// one-word rows, read back under [`ProtectionMode::Parity`] and
/// [`ProtectionMode::SecDed`] from the *same* fault seed.
///
/// A scout memory with protection off first classifies every row by its
/// visible flip count (stuck cells are a pure function of the seed and
/// position, so the classification transfers exactly). The measured runs
/// then pin the contrast the tentpole is about:
///
/// * single-flip rows: SEC-DED corrects them in place — the read returns
///   the intended bits with zero retry-ladder invocations — while parity
///   can only detect and, with deterministic stuck faults, fails them
///   explicitly after its retries;
/// * double-flip rows: SEC-DED flags an uncorrectable double and falls
///   through to the ladder (explicit failure), while parity aliases and
///   accepts the corruption silently.
fn smoke_secded() {
    const ROWS: u32 = 512;
    const BITS: u64 = 64;
    const P_STUCK: f64 = 4e-3;

    let memory = |mode: ProtectionMode| -> MainMemory {
        let mut config = MemConfig::pcm_default();
        config.fault_model = FaultModel::with_seed(SEED).with_stuck_at(P_STUCK, P_STUCK);
        let mut reliability = match mode {
            ProtectionMode::None => ReliabilityConfig::off(),
            ProtectionMode::Parity => ReliabilityConfig::protected(),
            ProtectionMode::SecDed => ReliabilityConfig::protected_secded(),
        };
        // Corruption must land for the read path to have work to do.
        reliability.verify_writes = false;
        config.reliability = reliability;
        MainMemory::new(config)
    };
    let addr = |r: u32| RowAddr::new(0, 0, 0, 0, r);
    let row_image = |r: u32| -> RowData {
        let mut rng = SimRng::seed_from_u64(SEED ^ u64::from(r));
        (0..BITS).map(|_| rng.gen_bool(0.5)).collect()
    };

    // Scout pass: classify rows by how many bits the stuck cells visibly
    // flip. Rows with 3+ flips are outside SEC-DED's correction class and
    // outside this scenario — the measured runs never store them.
    let mut scout = memory(ProtectionMode::None);
    let mut singles = Vec::new();
    let mut doubles = Vec::new();
    let mut clean = Vec::new();
    for r in 0..ROWS {
        let want = row_image(r);
        scout.poke_row(addr(r), &want).expect("scout poke");
        let diff = scout.peek_row(addr(r)).expect("stored").count_diff(&want);
        match diff {
            0 => clean.push(r),
            1 => singles.push(r),
            2 => doubles.push(r),
            _ => {}
        }
    }
    assert!(
        singles.len() >= 4 && doubles.len() >= 2,
        "seed must yield both fault classes: {} singles, {} doubles",
        singles.len(),
        doubles.len()
    );

    // SEC-DED run: singles corrected in place (intended bits back, zero
    // ladder), doubles detected and failed explicitly by the ladder.
    let mut secded = memory(ProtectionMode::SecDed);
    for &r in clean.iter().chain(&singles).chain(&doubles) {
        secded.poke_row(addr(r), &row_image(r)).expect("poke");
    }
    for &r in clean.iter().chain(&singles) {
        let retries_before = secded.stats().reliability.sense_retries;
        let got = secded.activate_read(addr(r), BITS).expect("accepted read");
        assert_eq!(got, row_image(r), "row {r} must read back as intended");
        assert_eq!(
            secded.stats().reliability.sense_retries,
            retries_before,
            "in-place correction must not invoke the retry ladder"
        );
    }
    for &r in &doubles {
        match secded.activate_read(addr(r), BITS) {
            Err(MemError::UncorrectableRead { .. }) => {}
            other => panic!("double-flip row {r} must fail explicitly, got {other:?}"),
        }
    }
    let sr = secded.stats().reliability;
    println!("secded smoke reliability stats: {sr:#?}");
    assert!(sr.is_consistent(), "ledger must close: {sr:?}");
    assert_eq!(
        sr.ecc_corrected_bits,
        singles.len() as u64,
        "pinned: {sr:?}"
    );
    assert_eq!(
        sr.ecc_detected_double,
        doubles.len() as u64,
        "pinned: {sr:?}"
    );
    assert_eq!(sr.silent_wrong_bits, 0, "SEC-DED must close the blind spot");
    assert_eq!(sr.uncorrectable_errors, doubles.len() as u64);

    // Parity run, same seed and rows: the mirror image. Odd-weight words
    // can only be detected (explicit failure after the ladder), and the
    // even-weight doubles alias the parity and corrupt silently.
    let mut parity = memory(ProtectionMode::Parity);
    for &r in clean.iter().chain(&singles).chain(&doubles) {
        parity.poke_row(addr(r), &row_image(r)).expect("poke");
    }
    for &r in &singles {
        match parity.activate_read(addr(r), BITS) {
            Err(MemError::UncorrectableRead { .. }) => {}
            other => panic!("single-flip row {r} must fail under parity, got {other:?}"),
        }
    }
    for &r in &doubles {
        let got = parity.activate_read(addr(r), BITS).expect("aliased read");
        assert_ne!(got, row_image(r), "row {r} aliases parity while wrong");
    }
    let pr = parity.stats().reliability;
    println!("parity smoke reliability stats: {pr:#?}");
    assert!(pr.is_consistent(), "ledger must close: {pr:?}");
    assert_eq!(
        pr.silent_wrong_bits,
        2 * doubles.len() as u64,
        "every aliased double is two silent wrong bits: {pr:?}"
    );
    assert_eq!(pr.ecc_corrected_bits, 0);
    assert_eq!(pr.uncorrectable_errors, singles.len() as u64);

    // Pinned fixed-seed class sizes: any change to the stuck-at draw
    // keying shows up here before it reaches the tables.
    assert_eq!(singles.len(), 88, "pinned: {} singles", singles.len());
    assert_eq!(doubles.len(), 19, "pinned: {} doubles", doubles.len());
    println!(
        "secded smoke OK ({} corrected, {} double)",
        singles.len(),
        doubles.len()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        smoke_secded();
        sweep(4, 512, 2_000);
        print_comparison(&protection_comparison(128, 512, SEED, 1e-3));
    } else {
        // Narrow rows, many senses: the systematic variation component is
        // one draw per sense *event*, shared by every column of that
        // sense, so at wide fan-ins (where the per-cell residuals average
        // out across the parallel combine) errors arrive as bursts on rare
        // tail draws. The number of events — not columns — sets how well
        // the functional side samples the tails the analytic model
        // integrates over per trial.
        sweep(4, 8_192, 32_768);
        println!();
        print_comparison(&protection_comparison(512, 512, SEED, 1e-3));
    }
}
