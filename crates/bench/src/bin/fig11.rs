//! Fig. 11: bitwise-operation energy saving over the SIMD baseline for
//! S-DRAM, AC-PIM, Pinatubo-2 and Pinatubo-128 across the Table 1
//! workloads, plus the geometric mean.
//!
//! Expected shape (paper §6.2): S-DRAM beats Pinatubo-2 in some cases but
//! loses to Pinatubo-128 on average; AC-PIM saves the least of the PIM
//! solutions (digital gates vs analog computing).
//!
//! Run with `cargo run --release -p pinatubo-bench --bin fig11`
//! (or `--bin all_figures` to get every figure from one evaluation pass).

use pinatubo_bench::{evaluate_table1, fig11_table};

fn main() {
    print!("{}", fig11_table(&evaluate_table1()));
}
