//! Ablation: memory technology.
//!
//! Compares PCM, STT-MRAM and ReRAM as the Pinatubo substrate: the sense
//! margin caps the OR fan-in (STT-MRAM's low ON/OFF ratio holds it to
//! 2-row operations, §4.2), and write energy shifts the per-op cost.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin ablation_technology`.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor};
use pinatubo_core::{BitwiseOp, BulkOp, PinatuboConfig};
use pinatubo_mem::MemConfig;
use pinatubo_nvm::energy::EnergyParams;
use pinatubo_nvm::sense_amp::CurrentSenseAmp;
use pinatubo_nvm::technology::Technology;

fn main() {
    let op = BulkOp::intra(BitwiseOp::Or, 64, 1 << 19);
    println!("# Ablation — technology (64-operand, 2^19-bit OR)");
    println!(
        "{:<10}{:>8}{:>10}{:>14}{:>16}",
        "tech", "ON/OFF", "fan-in", "time (us)", "energy (uJ)"
    );
    // One scoped worker per technology; rows print in input order.
    let rows = pinatubo_bench::parallel_map(
        vec![
            (Technology::pcm(), EnergyParams::pcm()),
            (Technology::stt_mram(), EnergyParams::stt_mram()),
            (Technology::reram(), EnergyParams::reram()),
        ],
        |(tech, energy)| {
            let fan_in = CurrentSenseAmp::new(&tech).max_or_fan_in();
            let mut mem = MemConfig::pcm_default();
            mem.technology = tech.clone();
            mem.energy = energy;
            let mut x = PinatuboExecutor::with_config(
                &format!("Pinatubo/{}", tech.kind()),
                mem,
                PinatuboConfig::multi_row(),
            );
            let r = x.execute(&op);
            format!(
                "{:<10}{:>8.1}{:>10}{:>14.2}{:>16.2}",
                tech.kind().to_string(),
                tech.on_off_ratio(),
                fan_in,
                r.time_ns / 1000.0,
                r.energy_pj / 1e6
            )
        },
    );
    for row in rows {
        println!("{row}");
    }
    println!();
    println!("note: timing held at the PCM/DDR3 values so the comparison isolates");
    println!("the sense-margin (fan-in) and write-energy effects");

    // The §1 non-volatility argument: standby power of a 64 GB system.
    let capacity_bits = 64u64 << 33;
    println!();
    println!("# standby power, 64 GB system (the paper's §1 NVM argument)");
    println!("{:<10}{:>14}", "memory", "idle power");
    for (name, energy) in [
        ("DRAM", EnergyParams::dram()),
        ("PCM", EnergyParams::pcm()),
        ("STT-MRAM", EnergyParams::stt_mram()),
        ("ReRAM", EnergyParams::reram()),
    ] {
        println!("{:<10}{:>11.2} W", name, energy.standby_w(capacity_bits));
    }
}
