//! Word-packed vs per-cell-reference fault-path benchmark.
//!
//! Runs the identical fault-injected command sequence — setup pokes, a
//! burst of full-width multi-row OR senses, a burst of full-width writes —
//! on two memories that differ only in `MemConfig::reference_fault_path`,
//! with every fault mechanism enabled (stuck-at, drift, Gaussian
//! variation, endurance, transients, write flips). Because the fault
//! draws are counter-keyed pure functions of position, the two paths must
//! produce bit-identical outputs, identical stored rows and identical
//! reliability ledgers; this binary asserts all three and reports the
//! wall-clock ratio. Results land machine-readably in `BENCH_fault.json`.
//!
//! ```console
//! $ cargo run --release -p pinatubo-bench --bin bench_fault
//! $ cargo run --release -p pinatubo-bench --bin bench_fault -- --smoke
//! ```
//!
//! `--smoke` shrinks the width and asserts only the equivalence
//! properties — no wall-clock thresholds, so it is safe for shared CI
//! runners. The full profile additionally asserts the packed path is at
//! least 20x faster on the 2^19-bit fan-in-4 OR sense burst.
//!
//! Both profiles also run the ladder-vs-ECC protection comparison
//! ([`pinatubo_bench::protection`]): the same stuck-at corruption read
//! back under no protection, per-word parity, and (72,64) SEC-DED. The
//! smoke asserts the tentpole contrast — SEC-DED ends the run with zero
//! silent wrong bits on a seed where parity's even-flip aliasing lets
//! corruption through — and the JSON records each mode's measured
//! latency/energy overhead.

use pinatubo_bench::protection::{print_comparison, protection_comparison, ProtectionRun};
use pinatubo_mem::{MainMemory, MemConfig, ReliabilityConfig, RowAddr, RowData};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::sense_amp::SenseMode;
use pinatubo_nvm::yield_analysis::VariationModel;
use std::time::Instant;

const SEED: u64 = 0x5EED;
const FAN_IN: usize = 4;

/// Every fault mechanism on at once, rates low enough that the realized
/// sites stay sparse (the regime the packed path is built for).
fn model() -> FaultModel {
    FaultModel::with_seed(SEED)
        .with_stuck_at(1e-4, 1e-4)
        .with_drift(0.05)
        .with_variation(VariationModel::Gaussian)
        .with_endurance(10_000, 0.2)
        .with_transients(1e-5, 1e-5, 1e-5)
        .with_write_flips(1e-5)
}

fn memory(reference_fault_path: bool) -> MainMemory {
    let mut config = MemConfig::pcm_default();
    config.fault_model = model();
    config.reliability = ReliabilityConfig::off();
    config.reference_fault_path = reference_fault_path;
    MainMemory::new(config)
}

fn pattern(bits: u64, salt: u64) -> RowData {
    (0..bits)
        .map(|i| {
            i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt * 0x5851_F42D_4C95_7F2D)
                & 8
                != 0
        })
        .collect()
}

/// One path's run: the full command sequence plus its sense / write burst
/// wall clocks and everything needed to check equivalence.
struct Run {
    sense_ms: f64,
    write_ms: f64,
    sense_outputs: Vec<RowData>,
    stored_rows: Vec<RowData>,
    reliability: pinatubo_mem::ReliabilityStats,
}

fn run(reference_fault_path: bool, cols: u64, senses: u64, writes: u64) -> Run {
    let mut mem = memory(reference_fault_path);
    let operands: Vec<RowAddr> = (0..FAN_IN)
        .map(|r| RowAddr::new(0, 0, 0, 0, r as u32))
        .collect();
    let write_row = RowAddr::new(0, 0, 0, 0, FAN_IN as u32);
    for (i, &row) in operands.iter().enumerate() {
        mem.poke_row(row, &pattern(cols, i as u64 + 1))
            .expect("poke");
    }

    let mode = SenseMode::or(FAN_IN).expect("fan-in within margin");
    let t0 = Instant::now();
    let sense_outputs: Vec<RowData> = (0..senses)
        .map(|_| {
            mem.multi_activate_sense(&operands, mode, cols)
                .expect("OR sense")
        })
        .collect();
    let sense_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    for w in 0..writes {
        mem.write_row_local(write_row, pattern(cols, 100 + w))
            .expect("write");
    }
    let write_ms = t0.elapsed().as_secs_f64() * 1e3;

    let stored_rows = operands
        .iter()
        .chain(std::iter::once(&write_row))
        .map(|&r| mem.peek_row(r).expect("stored").clone())
        .collect();
    Run {
        sense_ms,
        write_ms,
        sense_outputs,
        stored_rows,
        reliability: mem.stats().reliability,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (cols, senses, writes) = if smoke {
        (1u64 << 12, 2, 2)
    } else {
        (1u64 << 19, 4, 2)
    };

    let packed = run(false, cols, senses, writes);
    let reference = run(true, cols, senses, writes);

    let outputs_identical = packed.sense_outputs == reference.sense_outputs
        && packed.stored_rows == reference.stored_rows;
    let ledgers_identical = packed.reliability == reference.reliability;
    let sense_speedup = reference.sense_ms / packed.sense_ms;
    let write_speedup = reference.write_ms / packed.write_ms;

    println!(
        "# Packed vs reference fault paths — 2^{} bits, fan-in {}, {} senses, {} writes",
        cols.trailing_zeros(),
        FAN_IN,
        senses,
        writes
    );
    println!(
        "sense burst : packed {:.3} ms, reference {:.3} ms ({:.1}x)",
        packed.sense_ms, reference.sense_ms, sense_speedup
    );
    println!(
        "write burst : packed {:.3} ms, reference {:.3} ms ({:.1}x)",
        packed.write_ms, reference.write_ms, write_speedup
    );
    println!(
        "equivalence : outputs identical = {outputs_identical}, ledgers identical = {ledgers_identical}"
    );
    println!(
        "injected    : {} sense events, {} write events, {} bit errors, {} write faults",
        packed.reliability.physical_senses,
        packed.reliability.physical_writes,
        packed.reliability.injected_bit_errors,
        packed.reliability.injected_write_faults
    );

    assert!(
        outputs_identical,
        "packed and reference paths must be bit-identical"
    );
    assert!(
        ledgers_identical,
        "packed {:?} != reference {:?}",
        packed.reliability, reference.reliability
    );
    assert!(
        packed.reliability.injected_bit_errors > 0 || packed.reliability.injected_write_faults > 0,
        "the scenario must actually inject faults to be a meaningful check"
    );
    if !smoke {
        assert!(
            sense_speedup >= 20.0,
            "packed sense path must be at least 20x faster (measured {sense_speedup:.1}x)"
        );
    }

    // Ladder-vs-ECC: identical stuck-at corruption under all three
    // protection modes. Scale and stuck rate are chosen so the pinned
    // seed exhibits both fault classes SEC-DED is specified over —
    // single-flip words it corrects in place and even-flip words parity
    // silently aliases on — while staying below the 3-flips-per-word
    // regime that exceeds any distance-4 code.
    let (prot_rows, prot_bits, p_stuck) = if smoke {
        (512, 512, 1e-3)
    } else {
        (1024, 2048, 5e-4)
    };
    let protection = protection_comparison(prot_rows, prot_bits, SEED, p_stuck);
    println!();
    print_comparison(&protection);
    let [p_none, p_parity, p_secded] = &protection;
    assert_eq!(
        p_secded.reliability.silent_wrong_bits, 0,
        "SEC-DED must close the parity-aliasing blind spot: {:?}",
        p_secded.reliability
    );
    assert_eq!(
        p_secded.wrong_accepted_rows, 0,
        "every accepted SEC-DED read must match the intended data"
    );
    assert!(
        p_parity.reliability.silent_wrong_bits > 0,
        "the seed must exhibit parity aliasing for the contrast to mean anything: {:?}",
        p_parity.reliability
    );
    assert!(
        p_none.reliability.silent_wrong_bits >= p_parity.reliability.silent_wrong_bits,
        "unprotected reads cannot corrupt less than parity"
    );
    assert!(
        p_secded.reliability.ecc_corrected_bits > 0,
        "the scenario must exercise in-place correction"
    );

    let mode_json = |run: &ProtectionRun| {
        format!(
            "{{\n      \"time_ns\": {:.1}, \"energy_pj\": {:.1}, \"ecc_ns\": {:.1}, \
             \"ecc_pj\": {:.1},\n      \"explicit_read_failures\": {}, \
             \"silent_wrong_bits\": {}, \"wrong_accepted_rows\": {},\n      \
             \"ecc_corrected_bits\": {}, \"ecc_detected_double\": {}, \
             \"sense_retries\": {}\n    }}",
            run.time_ns,
            run.energy_pj,
            run.ecc_ns,
            run.ecc_pj,
            run.explicit_read_failures,
            run.reliability.silent_wrong_bits,
            run.wrong_accepted_rows,
            run.reliability.ecc_corrected_bits,
            run.reliability.ecc_detected_double,
            run.reliability.sense_retries,
        )
    };
    let protection_json = format!(
        "{{\n    \"rows\": {}, \"row_bits\": {},\n    \"none\": {},\n    \
         \"parity\": {},\n    \"secded\": {},\n    \
         \"secded_time_overhead_vs_none\": {:.4},\n    \
         \"secded_time_overhead_vs_parity\": {:.4},\n    \
         \"secded_energy_overhead_vs_none\": {:.4},\n    \
         \"secded_energy_overhead_vs_parity\": {:.4}\n  }}",
        prot_rows,
        prot_bits,
        mode_json(p_none),
        mode_json(p_parity),
        mode_json(p_secded),
        p_secded.time_ns / p_none.time_ns - 1.0,
        p_secded.time_ns / p_parity.time_ns - 1.0,
        p_secded.energy_pj / p_none.energy_pj - 1.0,
        p_secded.energy_pj / p_parity.energy_pj - 1.0,
    );

    let json = format!(
        "{{\n  \"bits_per_row\": {},\n  \"fan_in\": {},\n  \"senses\": {},\n  \
         \"writes\": {},\n  \"packed_sense_ms\": {:.3},\n  \
         \"reference_sense_ms\": {:.3},\n  \"sense_speedup\": {:.1},\n  \
         \"packed_write_ms\": {:.3},\n  \"reference_write_ms\": {:.3},\n  \
         \"write_speedup\": {:.1},\n  \"outputs_identical\": {},\n  \
         \"ledgers_identical\": {},\n  \"protection\": {}\n}}\n",
        cols,
        FAN_IN,
        senses,
        writes,
        packed.sense_ms,
        reference.sense_ms,
        sense_speedup,
        packed.write_ms,
        reference.write_ms,
        write_speedup,
        outputs_identical,
        ledgers_identical,
        protection_json,
    );
    std::fs::write("BENCH_fault.json", &json).expect("write BENCH_fault.json");
    println!("\nwrote BENCH_fault.json");
}
