//! Serial vs sharded-parallel batch execution benchmark.
//!
//! Builds the same independent 4-channel batch twice, executes it once on
//! the serial path (`execute_batch_serial`) and once on the per-channel
//! worker path (`execute_batch`), and reports both the measured wall-clock
//! times and the modeled command-stream / makespan times. Results are
//! written machine-readably to `BENCH_parallel.json`.
//!
//! ```console
//! $ cargo run --release -p pinatubo-bench --bin bench_parallel
//! $ cargo run --release -p pinatubo-bench --bin bench_parallel -- --smoke
//! ```
//!
//! `--smoke` runs a smaller batch and asserts only sanity properties
//! (identical result bits, consistent merged ledgers, makespan no worse
//! than the serial stream) — no wall-clock thresholds, so it is safe for
//! shared CI runners.

use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::MemConfig;
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimBitVec, PimSystem, ScheduleReport};
use std::time::Instant;

fn sys() -> PimSystem {
    PimSystem::new(
        MemConfig::pcm_default(),
        PinatuboConfig::default(),
        MappingPolicy::ChannelRotate,
    )
}

/// Builds `count` independent `k`-operand OR/AND/XOR requests over
/// `bits`-bit vectors. Channel-rotate placement keeps every request on one
/// channel and spreads consecutive requests round-robin over all four, so
/// the batch is maximally shardable.
fn build_batch(
    s: &mut PimSystem,
    count: usize,
    k: usize,
    bits: u64,
) -> (Vec<BatchRequest>, Vec<PimBitVec>) {
    let ops = [BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor];
    let mut requests = Vec::with_capacity(count);
    let mut dsts = Vec::with_capacity(count);
    for g in 0..count {
        let group = s.alloc_group(k + 1, bits).expect("allocation fits");
        for (v, salt) in group[..k].iter().zip(1u64..) {
            let pattern: Vec<bool> = (0..bits)
                .map(|i| (i.wrapping_mul(2654435761).wrapping_add(salt * g as u64)) & 4 != 0)
                .collect();
            s.store(v, &pattern).expect("store");
        }
        dsts.push(group[k].clone());
        requests.push(BatchRequest {
            op: ops[g % ops.len()],
            operands: group[..k].to_vec(),
            dst: group[k].clone(),
        });
    }
    (requests, dsts)
}

struct Measurement {
    requests: usize,
    operands: usize,
    bits: u64,
    channels: u32,
    workers: usize,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    report: ScheduleReport,
    bits_identical: bool,
    ledger_consistent: bool,
}

impl Measurement {
    fn wall_speedup(&self) -> f64 {
        self.serial_wall_ms / self.parallel_wall_ms
    }

    fn modeled_speedup(&self) -> f64 {
        self.report.serial_time_ns / self.report.makespan_ns
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"requests\": {},\n  \"operands_per_request\": {},\n  \
             \"bits_per_vector\": {},\n  \"channels\": {},\n  \
             \"workers\": {},\n  \
             \"serial_wall_ms\": {:.3},\n  \"parallel_wall_ms\": {:.3},\n  \
             \"wall_speedup\": {:.3},\n  \"modeled_serial_us\": {:.3},\n  \
             \"modeled_makespan_us\": {:.3},\n  \"modeled_speedup\": {:.3},\n  \
             \"mode_switches_naive\": {},\n  \"mode_switches_scheduled\": {},\n  \
             \"bits_identical\": {},\n  \"ledger_consistent\": {}\n}}\n",
            self.requests,
            self.operands,
            self.bits,
            self.channels,
            self.workers,
            self.serial_wall_ms,
            self.parallel_wall_ms,
            self.wall_speedup(),
            self.report.serial_time_ns / 1000.0,
            self.report.makespan_ns / 1000.0,
            self.modeled_speedup(),
            self.report.mode_switches_naive,
            self.report.mode_switches_scheduled,
            self.bits_identical,
            self.ledger_consistent,
        )
    }
}

fn measure(count: usize, k: usize, bits: u64, workers: usize) -> Measurement {
    let mut serial = sys();
    let (batch, outs) = build_batch(&mut serial, count, k, bits);
    let t0 = Instant::now();
    serial.execute_batch_serial(&batch).expect("serial batch");
    let serial_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

    let mut parallel = sys();
    let (batch, outs) = build_batch(&mut parallel, count, k, bits);
    let t0 = Instant::now();
    let report = parallel
        .execute_batch_with_workers(&batch, workers)
        .expect("parallel batch");
    let parallel_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

    Measurement {
        requests: count,
        operands: k,
        bits,
        channels: parallel.engine().memory().geometry().channels,
        workers,
        serial_wall_ms,
        parallel_wall_ms,
        bits_identical: serial_bits == parallel_bits,
        ledger_consistent: parallel.stats().reliability.is_consistent(),
        report,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let workers: usize = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    // The smoke profile keeps CI fast; the full profile makes per-request
    // compute large enough that per-phase shard split/merge is negligible.
    let (count, k, bits) = if smoke {
        (24, 4, 1 << 14)
    } else {
        (96, 8, 1 << 19)
    };

    // Warm the allocator/page-cache paths so the serial measurement does
    // not absorb one-time costs the parallel one skips.
    let _ = measure(8, 2, 1 << 12, workers);

    // Best-of-3 on the full profile: shared runners preempt whole
    // quanta, which shows up as multi-x outliers on either side.
    let iterations = if smoke { 1 } else { 3 };
    let m = (0..iterations)
        .map(|_| measure(count, k, bits, workers))
        .min_by(|a, b| {
            let ta = a.serial_wall_ms + a.parallel_wall_ms;
            let tb = b.serial_wall_ms + b.parallel_wall_ms;
            ta.total_cmp(&tb)
        })
        .expect("at least one iteration");
    println!(
        "# Sharded batch execution — {} requests x {}-operand, 2^{} bits, {} channels, {} workers",
        m.requests,
        m.operands,
        m.bits.trailing_zeros(),
        m.channels,
        workers
    );
    println!(
        "measured wall-clock : serial {:.2} ms, parallel {:.2} ms ({:.2}x)",
        m.serial_wall_ms,
        m.parallel_wall_ms,
        m.wall_speedup()
    );
    println!(
        "modeled device time : serial stream {:.2} us, makespan {:.2} us ({:.2}x)",
        m.report.serial_time_ns / 1000.0,
        m.report.makespan_ns / 1000.0,
        m.modeled_speedup()
    );
    println!(
        "result check        : bits identical = {}, merged ledger consistent = {}",
        m.bits_identical, m.ledger_consistent
    );

    // Sanity assertions — correctness properties only, never wall-clock
    // thresholds (CI runners share cores and vary wildly).
    assert!(
        m.bits_identical,
        "parallel result bits diverged from serial"
    );
    assert!(
        m.ledger_consistent,
        "merged reliability ledger inconsistent"
    );
    assert!(
        m.report.makespan_ns <= m.report.serial_time_ns * (1.0 + 1e-9),
        "modeled makespan exceeds the serial command stream"
    );
    assert!(
        m.serial_wall_ms > 0.0 && m.parallel_wall_ms > 0.0,
        "wall-clock timers must advance"
    );

    let json = m.to_json();
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
}
