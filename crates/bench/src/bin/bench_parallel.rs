//! Serial vs per-batch-sharded vs persistent-session execution benchmark.
//!
//! Three executors run the same multi-round request stream:
//!
//! * **serial** — `execute_batch_serial`, one request at a time on the
//!   unified memory (the correctness reference);
//! * **barrier** — `execute_batch_with_workers`, which re-splits the
//!   memory into channel shards, spawns workers, and re-absorbs the
//!   shards *every batch*;
//! * **pooled** — one persistent `ExecSession`: workers spawned once,
//!   shards owned for the whole stream, batches submitted back-to-back
//!   with no inter-batch barrier, one dirty-delta sync at close.
//!
//! The headline `wall_speedup` is **barrier / pooled** — what the
//! persistent pool buys over the per-batch split/absorb engine on the
//! same worker count. `speedup_vs_serial` (pooled vs serial) is also
//! reported; on a single-core host it cannot exceed 1 for compute-bound
//! batches, since thread parallelism has no cores to run on (see
//! `host_cores` in the output).
//!
//! The sweep covers three batch sizes x worker counts 1/2/4 and writes
//! machine-readable rows to `BENCH_parallel.json`.
//!
//! ```console
//! $ cargo run --release -p pinatubo-bench --bin bench_parallel
//! $ cargo run --release -p pinatubo-bench --bin bench_parallel -- --smoke
//! ```
//!
//! `--smoke` runs a small configuration through all three paths and
//! asserts only the correctness properties (identical result bits,
//! consistent merged ledgers, modeled makespan no worse than serial,
//! and `open_session` + syncs on a pre-populated memory copying
//! O(channels + touched pages) row pages — the copy-on-write guard) —
//! no wall-clock thresholds and **no JSON output**, so CI runners can
//! never overwrite the committed measurement with noise.

use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::{MemConfig, ROWS_PER_PAGE};
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimBitVec, PimSystem, ScheduleReport};
use std::time::Instant;

fn sys() -> PimSystem {
    let mut s = PimSystem::new(
        MemConfig::pcm_default(),
        PinatuboConfig::default(),
        MappingPolicy::ChannelRotate,
    );
    // Page-align allocation groups so a request's destination never
    // shares a copy-on-write page with a neighbouring group's operands:
    // a session shard's first write then copies only the group's own
    // pages instead of dragging cold foreign rows through the copy.
    s.set_page_aligned_groups(true);
    s
}

/// Builds `count` independent `k`-operand OR/AND/XOR requests over
/// `bits`-bit vectors. Channel-rotate placement keeps every request on one
/// channel and spreads consecutive requests round-robin over all four, so
/// the batch is maximally shardable.
fn build_batch(
    s: &mut PimSystem,
    count: usize,
    k: usize,
    bits: u64,
) -> (Vec<BatchRequest>, Vec<PimBitVec>) {
    let ops = [BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor];
    let mut requests = Vec::with_capacity(count);
    let mut dsts = Vec::with_capacity(count);
    for g in 0..count {
        let group = s.alloc_group(k + 1, bits).expect("allocation fits");
        for (v, salt) in group[..k].iter().zip(1u64..) {
            let pattern: Vec<bool> = (0..bits)
                .map(|i| (i.wrapping_mul(2654435761).wrapping_add(salt * g as u64)) & 4 != 0)
                .collect();
            s.store(v, &pattern).expect("store");
        }
        dsts.push(group[k].clone());
        requests.push(BatchRequest {
            op: ops[g % ops.len()],
            operands: group[..k].to_vec(),
            dst: group[k].clone(),
        });
    }
    (requests, dsts)
}

#[derive(Clone, Copy)]
struct Scenario {
    name: &'static str,
    count: usize,
    k: usize,
    bits: u64,
    /// How many times the batch is resubmitted: the persistent pool's
    /// whole point is amortizing setup over a stream of batches.
    rounds: usize,
}

struct Measurement {
    scenario: Scenario,
    workers: usize,
    channels: u32,
    serial_wall_ms: f64,
    barrier_wall_ms: f64,
    pooled_wall_ms: f64,
    report: ScheduleReport,
    bits_identical: bool,
    ledger_consistent: bool,
    /// Copy-on-write row pages the pooled run copied (session open +
    /// shard first-writes + syncs), from `MemStats::row_pages_copied`.
    pooled_pages_copied: u64,
}

impl Measurement {
    /// Persistent pool vs the per-batch split/absorb engine.
    fn wall_speedup(&self) -> f64 {
        self.barrier_wall_ms / self.pooled_wall_ms
    }

    /// Persistent pool vs one-request-at-a-time serial execution.
    fn speedup_vs_serial(&self) -> f64 {
        self.serial_wall_ms / self.pooled_wall_ms
    }

    fn modeled_speedup(&self) -> f64 {
        self.report.serial_time_ns / self.report.makespan_ns
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"requests\": {},\n      \
             \"operands_per_request\": {},\n      \"bits_per_vector\": {},\n      \
             \"rounds\": {},\n      \"channels\": {},\n      \"workers\": {},\n      \
             \"serial_wall_ms\": {:.3},\n      \"barrier_wall_ms\": {:.3},\n      \
             \"pooled_wall_ms\": {:.3},\n      \"wall_speedup\": {:.3},\n      \
             \"speedup_vs_serial\": {:.3},\n      \"modeled_serial_us\": {:.3},\n      \
             \"modeled_makespan_us\": {:.3},\n      \"modeled_speedup\": {:.3},\n      \
             \"pooled_pages_copied\": {},\n      \
             \"bits_identical\": {},\n      \"ledger_consistent\": {}\n    }}",
            self.scenario.name,
            self.scenario.count,
            self.scenario.k,
            self.scenario.bits,
            self.scenario.rounds,
            self.channels,
            self.workers,
            self.serial_wall_ms,
            self.barrier_wall_ms,
            self.pooled_wall_ms,
            self.wall_speedup(),
            self.speedup_vs_serial(),
            self.report.serial_time_ns / 1000.0,
            self.report.makespan_ns / 1000.0,
            self.modeled_speedup(),
            self.pooled_pages_copied,
            self.bits_identical,
            self.ledger_consistent,
        )
    }
}

fn run_serial(scenario: Scenario) -> (f64, Vec<Vec<bool>>) {
    let mut serial = sys();
    let (batch, outs) = build_batch(&mut serial, scenario.count, scenario.k, scenario.bits);
    let t0 = Instant::now();
    for _ in 0..scenario.rounds {
        serial.execute_batch_serial(&batch).expect("serial batch");
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (wall_ms, outs.iter().map(|v| serial.load(v)).collect())
}

fn run_barrier(scenario: Scenario, workers: usize) -> (f64, ScheduleReport, Vec<Vec<bool>>, bool) {
    let mut barrier = sys();
    let (batch, outs) = build_batch(&mut barrier, scenario.count, scenario.k, scenario.bits);
    let t0 = Instant::now();
    let mut report = None;
    for _ in 0..scenario.rounds {
        report = Some(
            barrier
                .execute_batch_with_workers(&batch, workers)
                .expect("barriered batch"),
        );
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (
        wall_ms,
        report.expect("at least one round"),
        outs.iter().map(|v| barrier.load(v)).collect(),
        barrier.stats().reliability.is_consistent(),
    )
}

fn run_pooled(scenario: Scenario, workers: usize) -> (f64, Vec<Vec<bool>>, bool, u64) {
    let mut pooled = sys();
    let (batch, outs) = build_batch(&mut pooled, scenario.count, scenario.k, scenario.bits);
    let batch = std::sync::Arc::new(batch);
    let t0 = Instant::now();
    let mut session = pooled.open_session_with_workers(workers);
    for _ in 0..scenario.rounds {
        session.submit_batch_shared(&batch).expect("pooled batch");
    }
    session.close().expect("session close");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (
        wall_ms,
        outs.iter().map(|v| pooled.load(v)).collect(),
        pooled.stats().reliability.is_consistent(),
        pooled.stats().row_pages_copied,
    )
}

/// One full three-executor measurement. `reversed` flips the executor
/// order (pooled → barrier → serial): alternating it across iterations
/// counterbalances drift that systematically favours whichever executor
/// runs first (allocator state, frequency scaling, co-tenant load ramps).
fn measure(scenario: Scenario, workers: usize, reversed: bool) -> Measurement {
    let serial;
    let barrier;
    let pooled;
    if reversed {
        pooled = run_pooled(scenario, workers);
        barrier = run_barrier(scenario, workers);
        serial = run_serial(scenario);
    } else {
        serial = run_serial(scenario);
        barrier = run_barrier(scenario, workers);
        pooled = run_pooled(scenario, workers);
    }
    let (serial_wall_ms, serial_bits) = serial;
    let (barrier_wall_ms, report, barrier_bits, barrier_ledger) = barrier;
    let (pooled_wall_ms, pooled_bits, pooled_ledger, pooled_pages_copied) = pooled;

    Measurement {
        scenario,
        workers,
        channels: MemConfig::pcm_default().geometry.channels,
        serial_wall_ms,
        barrier_wall_ms,
        pooled_wall_ms,
        bits_identical: serial_bits == barrier_bits && serial_bits == pooled_bits,
        ledger_consistent: pooled_ledger && barrier_ledger,
        pooled_pages_copied,
        report,
    }
}

fn check(m: &Measurement) {
    // Sanity assertions — correctness properties only, never wall-clock
    // thresholds (CI runners share cores and vary wildly).
    assert!(
        m.bits_identical,
        "parallel result bits diverged from serial ({} x{} workers)",
        m.scenario.name, m.workers
    );
    assert!(
        m.ledger_consistent,
        "merged reliability ledger inconsistent ({} x{} workers)",
        m.scenario.name, m.workers
    );
    assert!(
        m.report.makespan_ns <= m.report.serial_time_ns * (1.0 + 1e-9),
        "modeled makespan exceeds the serial command stream"
    );
    assert!(
        m.serial_wall_ms > 0.0 && m.barrier_wall_ms > 0.0 && m.pooled_wall_ms > 0.0,
        "wall-clock timers must advance"
    );
    // The copy-on-write regression guard: opening a session on a
    // pre-populated memory plus the whole stream's syncs must copy row
    // pages proportional to channels + touched pages — never to the
    // populated-row count or to capacity. Each request's first write
    // can copy every page its destination touches (+1 if the
    // destination starts mid-page).
    let page = u64::from(ROWS_PER_PAGE);
    let row_bits = MemConfig::pcm_default().geometry.logical_row_bits();
    let rows_per_vector = m.scenario.bits.div_ceil(row_bits);
    let touched_pages = m.scenario.count as u64 * (rows_per_vector.div_ceil(page) + 1);
    let bound = u64::from(m.channels) + touched_pages;
    // Zero is legitimate (and ideal): an aligned destination whose page
    // was never materialized in the parent is created fresh, not copied.
    assert!(
        m.pooled_pages_copied <= bound,
        "session row-page copies must stay O(channels + touched pages): \
         copied {} against bound {} ({} x{} workers)",
        m.pooled_pages_copied,
        bound,
        m.scenario.name,
        m.workers
    );
}

fn print_row(m: &Measurement) {
    println!(
        "{:<7} {:>3} req x{:<2} 2^{:<2} bits r{} w{} | serial {:>8.2} ms | barrier {:>8.2} ms | pooled {:>8.2} ms | {:>5.2}x vs barrier, {:>5.2}x vs serial",
        m.scenario.name,
        m.scenario.count,
        m.scenario.k,
        m.scenario.bits.trailing_zeros(),
        m.scenario.rounds,
        m.workers,
        m.serial_wall_ms,
        m.barrier_wall_ms,
        m.pooled_wall_ms,
        m.wall_speedup(),
        m.speedup_vs_serial(),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    if smoke {
        // Correctness only, through all three paths including the
        // persistent pool, on two pool sizes. No JSON: the committed
        // BENCH_parallel.json holds the full-profile measurement and CI
        // must never clobber it with shared-runner noise.
        let scenario = Scenario {
            name: "smoke",
            count: 24,
            k: 4,
            bits: 1 << 14,
            rounds: 2,
        };
        for workers in [1usize, 2] {
            let m = measure(scenario, workers, false);
            check(&m);
            print_row(&m);
        }
        println!("smoke OK (correctness only; no BENCH_parallel.json written)");
        return;
    }

    let scenarios = [
        Scenario {
            name: "small",
            count: 24,
            k: 4,
            bits: 1 << 14,
            rounds: 8,
        },
        Scenario {
            name: "medium",
            count: 48,
            k: 6,
            bits: 1 << 16,
            rounds: 4,
        },
        Scenario {
            name: "large",
            count: 96,
            k: 8,
            bits: 1 << 18,
            rounds: 2,
        },
    ];

    // Warm the allocator/page-cache paths so the first measurement does
    // not absorb one-time costs the later ones skip.
    let _ = measure(
        Scenario {
            name: "warmup",
            count: 8,
            k: 2,
            bits: 1 << 12,
            rounds: 1,
        },
        2,
        false,
    );

    println!("# Persistent pool vs per-batch shards vs serial ({host_cores} host cores)");
    let mut rows = Vec::new();
    for scenario in scenarios {
        for workers in [1usize, 2, 4] {
            // Per-executor best-of-9, executor order alternating between
            // iterations: shared runners preempt whole quanta, which
            // shows up as multi-x outliers. Each executor's wall time is
            // measured independently, so the minimum per executor is the
            // least-preempted estimate of its true cost; taking a whole
            // iteration instead would let one executor's unlucky quantum
            // distort the ratio, and a fixed order would let slow drift
            // systematically favour one side.
            let mut iters: Vec<Measurement> = (0..9)
                .map(|i| measure(scenario, workers, i % 2 == 1))
                .collect();
            for m in &iters {
                check(m);
            }
            let min_of = |f: fn(&Measurement) -> f64| iters.iter().map(f).fold(f64::MAX, f64::min);
            let serial = min_of(|m| m.serial_wall_ms);
            let barrier = min_of(|m| m.barrier_wall_ms);
            let pooled = min_of(|m| m.pooled_wall_ms);
            let mut m = iters.pop().expect("nine iterations");
            m.serial_wall_ms = serial;
            m.barrier_wall_ms = barrier;
            m.pooled_wall_ms = pooled;
            print_row(&m);
            rows.push(m);
        }
    }

    let best = rows
        .iter()
        .map(Measurement::wall_speedup)
        .fold(f64::MIN, f64::max);
    println!("\nbest pooled-vs-barrier wall speedup: {best:.2}x");

    let json = format!(
        "{{\n  \"host_cores\": {},\n  \"wall_speedup_definition\": \
         \"barrier_wall_ms / pooled_wall_ms: the persistent session vs the \
         per-batch split/absorb executor at the same worker count. \
         speedup_vs_serial is pooled vs execute_batch_serial and is bounded \
         by the host's core count.\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        host_cores,
        rows.iter()
            .map(Measurement::to_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
