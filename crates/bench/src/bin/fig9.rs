//! Fig. 9: Pinatubo's OR throughput (GB/s of operand bits) versus
//! bit-vector length, for 2…128-row operations.
//!
//! Expected shape (paper §6.2): throughput rises with vector length; a
//! first turning point at 2^14 bits (the SA-mux serialization limit), a
//! second at 2^19 bits (the row-length limit, after which rank-serial
//! segments flatten the curve); larger fan-ins lift the whole curve, with
//! 128-row operations exceeding the memory-internal bandwidth region.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin fig9`.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor};
use pinatubo_bench::format_table;
use pinatubo_core::{BitwiseOp, BulkOp};
use pinatubo_nvm::timing::TimingParams;

fn main() {
    let fan_ins = [2usize, 4, 8, 16, 32, 64, 128];
    let columns: Vec<String> = fan_ins.iter().map(|n| format!("{n}-row OR")).collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    let mut executor = PinatuboExecutor::multi_row();
    let mut rows = Vec::new();
    for len_log2 in 10..=20u32 {
        let bits = 1u64 << len_log2;
        let values: Vec<f64> = fan_ins
            .iter()
            .map(|&n| {
                let op = BulkOp::intra(BitwiseOp::Or, n, bits);
                let report = executor.execute(&op);
                report.throughput_gbps(op.operand_bits())
            })
            .collect();
        rows.push((format!("2^{len_log2} bits"), values));
    }

    print!(
        "{}",
        format_table(
            "Fig. 9 — Pinatubo OR throughput (GB/s, operand bits)",
            &column_refs,
            &rows,
        )
    );

    let timing = TimingParams::pcm_ddr3_1600();
    let bus = timing.bus_bandwidth_gbps() * 4.0; // 4 channels
    println!();
    println!("DDR bus bandwidth (4 channels):        {bus:.1} GB/s");
    println!("turning point A (SA mux):              2^14 bits");
    println!("turning point B (row length):          2^19 bits");
    println!("regions: below-bus < {bus:.0} GB/s < internal < ~2000 GB/s < beyond-internal");
}
