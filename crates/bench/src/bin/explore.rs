//! Interactive cost explorer: price one bulk bitwise operation on every
//! executor, with a full command-level breakdown for Pinatubo.
//!
//! ```console
//! $ cargo run --release -p pinatubo-bench --bin explore -- \
//!       --op or --operands 64 --bits 524288 --locality intra
//! ```
//!
//! Flags (all optional): `--op or|and|xor|not`, `--operands N`,
//! `--bits N`, `--locality intra|intersub|interbank|host`,
//! `--fan-in N` (Pinatubo cap), `--footprint BYTES` (CPU cache model).

use pinatubo_baselines::{
    AcPimExecutor, BitwiseExecutor, PinatuboExecutor, SdramExecutor, SimdCpu,
};
use pinatubo_core::{BitwiseOp, BulkOp, OpClass};

/// Minimal `--key value` argument parsing (std-only by design).
struct Args(Vec<String>);

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    let op = match args.get("--op").unwrap_or("or") {
        "and" => BitwiseOp::And,
        "xor" => BitwiseOp::Xor,
        "not" => BitwiseOp::Not,
        _ => BitwiseOp::Or,
    };
    let operands: usize = args.parse("--operands", if op == BitwiseOp::Not { 1 } else { 2 });
    let bits: u64 = args.parse("--bits", 1 << 19);
    let locality = match args.get("--locality").unwrap_or("intra") {
        "intersub" => OpClass::InterSubarray,
        "interbank" => OpClass::InterBank,
        "host" => OpClass::HostFallback,
        _ => OpClass::IntraSubarray,
    };
    let fan_in: usize = args.parse("--fan-in", 1024);
    let footprint: u64 = args.parse("--footprint", 4 << 30);

    let bulk = BulkOp {
        op,
        operand_count: operands,
        bits,
        locality,
    };
    println!("op: {op} x{operands} over {bits} bits, {locality} placement\n",);

    // Executors are built inside each scoped worker (trait objects are not
    // Send); one worker per executor, rows printed in input order.
    let build = |which: usize| -> Box<dyn BitwiseExecutor> {
        match which {
            0 => {
                let mut simd = SimdCpu::with_pcm();
                simd.set_workload_footprint(Some(footprint));
                Box::new(simd)
            }
            1 => Box::new(SdramExecutor::new()),
            2 => Box::new(AcPimExecutor::new()),
            3 => Box::new(PinatuboExecutor::two_row()),
            _ => Box::new(PinatuboExecutor::with_fan_in(fan_in)),
        }
    };
    println!(
        "{:<16}{:>14}{:>16}{:>16}",
        "executor", "time (us)", "energy (nJ)", "equiv GB/s"
    );
    let results = pinatubo_bench::parallel_map((0..5usize).collect(), |which| {
        let mut executor = build(which);
        let r = executor.execute(&bulk);
        (executor.name().to_string(), r)
    });
    let mut reports = Vec::new();
    for (name, r) in results {
        println!(
            "{:<16}{:>14.3}{:>16.2}{:>16.1}",
            name,
            r.time_ns / 1000.0,
            r.energy_pj / 1000.0,
            r.throughput_gbps(bulk.operand_bits())
        );
        reports.push(r);
    }
    let simd_time = reports[0].time_ns;
    let pin_time = reports.last().expect("pinatubo ran").time_ns;
    println!(
        "\nPinatubo-{fan_in} vs SIMD: {:.1}x faster, {:.0}x less energy",
        simd_time / pin_time,
        reports[0].energy_pj / reports.last().expect("pinatubo ran").energy_pj
    );

    // Command-level breakdown from a fresh engine replay.
    let mut pim = PinatuboExecutor::with_fan_in(fan_in);
    let _ = pim.execute(&bulk);
    let stats = pim.engine().memory().stats();
    println!("\nPinatubo command account:");
    println!(
        "  activations (multi/single): {}/{}",
        stats.events.multi_activates, stats.events.activates
    );
    println!(
        "  rows opened               : {}",
        stats.events.rows_activated
    );
    println!(
        "  sense passes              : {}",
        stats.events.sense_passes
    );
    println!("  row writes                : {}", stats.events.row_writes);
    println!(
        "  GDL transfers             : {}",
        stats.events.gdl_transfers
    );
    println!(
        "  buffer-logic passes       : {}",
        stats.events.logic_passes
    );
    println!("  DDR bus bits              : {}", stats.events.bus_bits);
    let e = &stats.energy;
    println!(
        "  energy: act {:.1} / sense {:.1} / write {:.1} / gdl {:.1} / logic {:.1} / bus {:.1} nJ",
        e.activate_pj / 1000.0,
        e.sense_pj / 1000.0,
        e.write_pj / 1000.0,
        e.gdl_pj / 1000.0,
        e.logic_pj / 1000.0,
        e.bus_pj / 1000.0
    );
}
