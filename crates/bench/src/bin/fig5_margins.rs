//! Fig. 5/6: sense-amplifier reference placement and margins.
//!
//! Prints, for every technology, the resistance regions and reference
//! values for READ / OR / AND sensing, and the maximum OR fan-in the
//! worst-case margin analysis closes at — the reproduction of the paper's
//! HSPICE validation of the modified CSA.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin fig5_margins`.

use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode};
use pinatubo_nvm::technology::Technology;

fn main() {
    for tech in [
        Technology::pcm(),
        Technology::stt_mram(),
        Technology::reram(),
    ] {
        let sa = CurrentSenseAmp::new(&tech);
        println!(
            "# {} — R_low {} / R_high {} (ON/OFF {}x, variation ±{:.1}%)",
            tech.kind(),
            tech.r_low(),
            tech.r_high(),
            tech.on_off_ratio(),
            tech.variation() * 100.0
        );
        println!(
            "{:<10}{:>16}{:>16}{:>16}{:>12}{:>10}",
            "mode", "'1' region hi", "reference", "'0' region lo", "gap ratio", "closes"
        );

        let mut modes = vec![SenseMode::Read];
        for fan_in in [2usize, 4, 16, 64, 128, 129] {
            if let Ok(mode) = SenseMode::or(fan_in) {
                modes.push(mode);
            }
        }
        modes.push(SenseMode::and(2).expect("binary AND"));

        for mode in modes {
            let m = sa.margin(mode);
            println!(
                "{:<10}{:>16}{:>16}{:>16}{:>12.3}{:>10}",
                mode.to_string(),
                m.one_region().hi().to_string(),
                m.reference().to_string(),
                m.zero_region().lo().to_string(),
                m.gap_ratio(),
                if m.is_separable() { "yes" } else { "NO" }
            );
        }
        println!(
            "max OR fan-in (margin analysis ∧ conservative cap): {}",
            sa.max_or_fan_in()
        );
        println!();
    }
}
