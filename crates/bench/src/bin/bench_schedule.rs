//! Request-granularity vs command-interleaved makespan, and greedy vs
//! bounded-lookahead planning.
//!
//! Every batch is scored under both channel-controller models the
//! scheduler maintains:
//!
//! * **request granularity** — each request is one opaque block: one
//!   lane reservation, one tRRD/tFAW launch gate, and a bus cursor that
//!   serializes whole requests (`request_granularity_ns`);
//! * **command interleaving** — each request expands into its timed
//!   command stream (ACT units, sense/write lane blocks, GDL hops, bus
//!   bursts) and commands from different requests interleave on the
//!   channel's discrete resources (`makespan_ns`).
//!
//! The per-channel minimum of the two makes `makespan_ns ≤
//! request_granularity_ns` hold by construction; the bench measures how
//! much the interleaving actually recovers. It also compares the greedy
//! list schedule (`plan_batch_greedy`) against the full bounded-lookahead
//! plan (`plan_batch`) under `planned_makespan_ns`.
//!
//! Three uniform shapes (small/medium/large, channel-rotated
//! intra-subarray batches) establish the baseline — lane-dominated
//! streams leave little for interleaving to recover — and three pinned
//! adversarial shapes isolate the effects the coarse model and one-step
//! greedy provably miss:
//!
//! * **`bus_hog`** — a high-fan-in host-fallback request whose DDR
//!   bursts hold the channel bus, followed by long lane-only XOR chains
//!   on another rank. The fused model launches the chains behind the
//!   full bus hold, while the interleaved model starts their lane work
//!   immediately (pinned tightening);
//! * **`fanin_trap`** — three short requests stacked on one bank lane
//!   plus one long request on another bank. Greedy dispatches the short
//!   requests first (they finish earliest), which advances the channel's
//!   in-order issue cursor past their stacked lane starts and pushes the
//!   long request's launch late; the lookahead plan dispatches the long
//!   request early and hides the stack behind it (pinned planner win);
//! * **`mixed_fan_in`** — both at once, fan-ins 3/6/8 mixed: the hog
//!   and chains on channel 0, the trap on channel 1. Both pinned wins
//!   must survive in one batch.
//!
//! ```console
//! $ cargo run --release -p pinatubo-bench --bin bench_schedule
//! $ cargo run --release -p pinatubo-bench --bin bench_schedule -- --smoke
//! ```
//!
//! `--smoke` runs the small and adversarial shapes and asserts only the
//! correctness properties (result bits identical to serial execution,
//! interleaved ≤ request-granularity everywhere, lookahead ≤ greedy
//! everywhere, and the pinned wins on `mixed_fan_in`) — **no JSON
//! output**, so CI runners can never overwrite the committed measurement.

use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::MemConfig;
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimBitVec, PimSystem, ScheduleReport};

/// Minimum fraction of the request-granularity makespan the interleaved
/// placement must recover on the `mixed_fan_in` shape. The shape is
/// deterministic, so this is a regression pin, not a noisy threshold.
/// (Measured: 18.8%.)
const MIXED_MIN_TIGHTENING: f64 = 0.10;
/// Minimum fractional improvement of the lookahead plan over the greedy
/// plan on the `mixed_fan_in` shape (same pinning rationale; measured
/// 22.1%).
const MIXED_MIN_LOOKAHEAD_WIN: f64 = 0.02;
/// Tightening pin for the `bus_hog` shape (measured 19.3%).
const BUS_HOG_MIN_TIGHTENING: f64 = 0.15;
/// Lookahead-win pin for the `fanin_trap` shape (measured 33.2%).
const TRAP_MIN_LOOKAHEAD_WIN: f64 = 0.25;

fn sys() -> PimSystem {
    let mut s = PimSystem::new(
        MemConfig::pcm_default(),
        PinatuboConfig::default(),
        MappingPolicy::ChannelRotate,
    );
    s.set_page_aligned_groups(true);
    s
}

fn store_pattern(s: &mut PimSystem, v: &PimBitVec, bits: u64, salt: u64) {
    let pattern: Vec<bool> = (0..bits)
        .map(|i| (i.wrapping_mul(2654435761).wrapping_add(salt)) & 4 != 0)
        .collect();
    s.store(v, &pattern).expect("store");
}

/// `count` independent `k`-operand requests over `bits`-bit vectors,
/// channel-rotated so consecutive requests land on different channels
/// (the same shape bench_parallel uses).
fn build_uniform(s: &mut PimSystem, count: usize, k: usize, bits: u64) -> Vec<BatchRequest> {
    let ops = [BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor];
    let mut requests = Vec::with_capacity(count);
    for g in 0..count {
        let group = s.alloc_group(k + 1, bits).expect("allocation fits");
        for (j, v) in group[..k].iter().enumerate() {
            store_pattern(s, v, bits, g as u64 * 31 + j as u64);
        }
        requests.push(BatchRequest {
            op: ops[g % ops.len()],
            operands: group[..k].to_vec(),
            dst: group[k].clone(),
        });
    }
    requests
}

/// Bits per adversarial vector: one sense pass and a 40 ns DDR burst, so
/// every request's shape is set by its fan-in and class, not its width.
const ADV_BITS: u64 = 4096;
/// Rows to skip so the next allocation on the current channel lands in
/// the next bank (subarrays_per_bank × rows_per_subarray for the PCM
/// geometry): destinations get distinct lanes when the shape needs them.
fn bank_stride_rows() -> u64 {
    let g = MemConfig::pcm_default().geometry;
    u64::from(g.subarrays_per_bank) * u64::from(g.rows_per_subarray)
}

/// A plain (non-group) allocation of one bank's worth of rows: advances
/// the current rotation channel's cursor into the next bank without
/// advancing the rotation itself.
fn skip_bank(s: &mut PimSystem) {
    let row_bits = MemConfig::pcm_default().geometry.logical_row_bits();
    s.alloc(bank_stride_rows() * row_bits).expect("bank filler");
}

/// Burns one rotation slot so the next group lands on the next channel.
fn skip_rotation(s: &mut PimSystem) {
    s.alloc_group(1, ADV_BITS).expect("rotation placeholder");
}

/// One 8-operand host-fallback **bus hog** (destination on channel 0
/// rank 0, operands spread over channels 2 and 3) plus two long
/// 8-operand intra-subarray XOR chains on two channel-0 **rank-1**
/// banks. Greedy dispatches the hog first (it finishes earliest), and
/// then the fused model launches each chain behind the hog's full DDR
/// bus hold, while the command-interleaved model starts the chains'
/// lane work immediately — the bus hold only blocks bus slots, and the
/// chains have none. The rank split keeps the chains off the hog's
/// tRRD/tFAW ledger, so every dispatch order scores the same under the
/// interleaved model and the greedy hog-first order is retained.
fn build_bus_hog(s: &mut PimSystem) -> Vec<BatchRequest> {
    let home = s.alloc_group(3, ADV_BITS).expect("hog home");
    skip_rotation(s);
    let r2 = s.alloc_group(3, ADV_BITS).expect("hog ops ch2");
    let r3 = s.alloc_group(3, ADV_BITS).expect("hog ops ch3");
    let mut chains = Vec::new();
    for banks_to_skip in [8, 1] {
        for _ in 0..banks_to_skip {
            skip_bank(s);
        }
        chains.push(s.alloc_group(9, ADV_BITS).expect("lane chain"));
        skip_rotation(s);
        skip_rotation(s);
        skip_rotation(s);
    }

    let mut requests = Vec::new();
    let mut operands: Vec<PimBitVec> = Vec::with_capacity(8);
    operands.extend_from_slice(&home[..2]);
    operands.extend_from_slice(&r2);
    operands.extend_from_slice(&r3);
    for (j, v) in operands.iter().enumerate() {
        store_pattern(s, v, ADV_BITS, 300 + j as u64);
    }
    requests.push(BatchRequest {
        op: BitwiseOp::Xor,
        operands,
        dst: home[2].clone(),
    });
    for (c, chain) in chains.iter().enumerate() {
        for (j, v) in chain[..8].iter().enumerate() {
            store_pattern(s, v, ADV_BITS, 400 + c as u64 * 13 + j as u64);
        }
        requests.push(BatchRequest {
            op: BitwiseOp::Xor,
            operands: chain[..8].to_vec(),
            dst: chain[8].clone(),
        });
    }
    requests
}

/// The **issue-cursor trap**: three short 3-operand XOR requests stacked
/// on one bank lane plus one long 6-operand XOR on another bank of the
/// same channel. Greedy dispatches the short requests first (they finish
/// earliest); each stacked dispatch advances the channel's in-order
/// issue cursor, so the long request launches late and sticks out. The
/// lookahead plan dispatches the long request early and hides the stack
/// behind it.
fn build_fanin_trap(s: &mut PimSystem) -> Vec<BatchRequest> {
    let gta = s.alloc_group(12, ADV_BITS).expect("trap stack");
    skip_rotation(s);
    skip_rotation(s);
    skip_rotation(s);
    skip_bank(s);
    let gtb = s.alloc_group(7, ADV_BITS).expect("trap long");

    let mut requests = Vec::new();
    for (a, trap) in gta.chunks(4).enumerate() {
        for (j, v) in trap[..3].iter().enumerate() {
            store_pattern(s, v, ADV_BITS, 100 + a as u64 * 7 + j as u64);
        }
        requests.push(BatchRequest {
            op: BitwiseOp::Xor,
            operands: trap[..3].to_vec(),
            dst: trap[3].clone(),
        });
    }
    for (j, v) in gtb[..6].iter().enumerate() {
        store_pattern(s, v, ADV_BITS, 200 + j as u64);
    }
    requests.push(BatchRequest {
        op: BitwiseOp::Xor,
        operands: gtb[..6].to_vec(),
        dst: gtb[6].clone(),
    });
    requests
}

/// The pinned adversarial batch: the channel-0 bus hog and rank-1 lane
/// chains of [`build_bus_hog`] together with the channel-1 issue-cursor
/// trap of [`build_fanin_trap`]. Fan-ins 3/6/8 mixed — hence the name.
/// The interleaving win and the lookahead win must both survive in one
/// batch.
fn build_mixed_fan_in(s: &mut PimSystem) -> Vec<BatchRequest> {
    // Rotation cycle 1: hog home (ch0), trap stack (ch1), hog remote
    // operands (ch2, ch3).
    let gh0 = s.alloc_group(3, ADV_BITS).expect("hog home");
    let gta = s.alloc_group(12, ADV_BITS).expect("trap stack");
    let go2 = s.alloc_group(3, ADV_BITS).expect("hog ops ch2");
    let go3 = s.alloc_group(3, ADV_BITS).expect("hog ops ch3");

    // Cycle 2: first lane chain on ch0 rank 1 (off the hog's tRRD/tFAW
    // ledger); next ch1 bank for the trap's long request.
    for _ in 0..8 {
        skip_bank(s);
    }
    let chain_a = s.alloc_group(9, ADV_BITS).expect("lane chain a");
    skip_bank(s);
    let gtb = s.alloc_group(7, ADV_BITS).expect("trap long");
    skip_rotation(s);
    skip_rotation(s);

    // Cycle 3: second lane chain on the next ch0 rank-1 bank.
    skip_bank(s);
    let chain_b = s.alloc_group(9, ADV_BITS).expect("lane chain b");

    let mut requests = Vec::new();
    for (a, trap) in gta.chunks(4).enumerate() {
        for (j, v) in trap[..3].iter().enumerate() {
            store_pattern(s, v, ADV_BITS, 100 + a as u64 * 7 + j as u64);
        }
        requests.push(BatchRequest {
            op: BitwiseOp::Xor,
            operands: trap[..3].to_vec(),
            dst: trap[3].clone(),
        });
    }
    for (j, v) in gtb[..6].iter().enumerate() {
        store_pattern(s, v, ADV_BITS, 200 + j as u64);
    }
    requests.push(BatchRequest {
        op: BitwiseOp::Xor,
        operands: gtb[..6].to_vec(),
        dst: gtb[6].clone(),
    });
    let mut operands: Vec<PimBitVec> = Vec::with_capacity(8);
    operands.extend_from_slice(&gh0[..2]);
    operands.extend_from_slice(&go2);
    operands.extend_from_slice(&go3);
    for (j, v) in operands.iter().enumerate() {
        store_pattern(s, v, ADV_BITS, 300 + j as u64);
    }
    requests.push(BatchRequest {
        op: BitwiseOp::Xor,
        operands,
        dst: gh0[2].clone(),
    });
    for (c, chain) in [&chain_a, &chain_b].into_iter().enumerate() {
        for (j, v) in chain[..8].iter().enumerate() {
            store_pattern(s, v, ADV_BITS, 400 + c as u64 * 13 + j as u64);
        }
        requests.push(BatchRequest {
            op: BitwiseOp::Xor,
            operands: chain[..8].to_vec(),
            dst: chain[8].clone(),
        });
    }
    requests
}

struct Measurement {
    shape: &'static str,
    requests: usize,
    report: ScheduleReport,
    greedy_planned_ns: f64,
    lookahead_planned_ns: f64,
    bits_identical: bool,
}

impl Measurement {
    /// Fraction of the request-granularity makespan recovered by
    /// command interleaving.
    fn tightening(&self) -> f64 {
        let rg = self.report.makespan.request_granularity_ns;
        if rg == 0.0 {
            0.0
        } else {
            self.report.makespan.interleave_recovered_ns / rg
        }
    }

    /// Fractional improvement of the lookahead plan over greedy.
    fn lookahead_win(&self) -> f64 {
        if self.greedy_planned_ns == 0.0 {
            0.0
        } else {
            1.0 - self.lookahead_planned_ns / self.greedy_planned_ns
        }
    }

    fn to_json(&self) -> String {
        let m = &self.report.makespan;
        format!(
            "    {{\n      \"shape\": \"{}\",\n      \"requests\": {},\n      \
             \"serial_ns\": {:.3},\n      \"request_granularity_ns\": {:.3},\n      \
             \"makespan_ns\": {:.3},\n      \"interleave_recovered_ns\": {:.3},\n      \
             \"tightening\": {:.4},\n      \"rrd_faw_stall_ns\": {:.3},\n      \
             \"bus_conflict_stall_ns\": {:.3},\n      \"lanes_used\": {},\n      \
             \"greedy_planned_ns\": {:.3},\n      \"lookahead_planned_ns\": {:.3},\n      \
             \"lookahead_win\": {:.4},\n      \"bits_identical\": {}\n    }}",
            self.shape,
            self.requests,
            self.report.serial_time_ns,
            m.request_granularity_ns,
            m.makespan_ns,
            m.interleave_recovered_ns,
            self.tightening(),
            m.rrd_faw_stall_ns,
            m.bus_conflict_stall_ns,
            m.lanes_used,
            self.greedy_planned_ns,
            self.lookahead_planned_ns,
            self.lookahead_win(),
            self.bits_identical,
        )
    }
}

fn measure(
    shape: &'static str,
    build: impl Fn(&mut PimSystem) -> Vec<BatchRequest>,
) -> Measurement {
    // Serial reference for result bits.
    let mut serial = sys();
    let batch_s = build(&mut serial);
    serial.execute_batch_serial(&batch_s).expect("serial");
    let serial_bits: Vec<Vec<bool>> = batch_s.iter().map(|r| serial.load(&r.dst)).collect();

    // Scheduled execution and the planner comparison.
    let mut parallel = sys();
    let batch = build(&mut parallel);
    let greedy = parallel.plan_batch_greedy(&batch);
    let planned = parallel.plan_batch(&batch);
    let greedy_planned_ns = parallel.planned_makespan_ns(&batch, &greedy);
    let lookahead_planned_ns = parallel.planned_makespan_ns(&batch, &planned);
    let report = parallel.execute_batch(&batch).expect("batch");
    let batch_bits: Vec<Vec<bool>> = batch.iter().map(|r| parallel.load(&r.dst)).collect();

    Measurement {
        shape,
        requests: batch.len(),
        report,
        greedy_planned_ns,
        lookahead_planned_ns,
        bits_identical: serial_bits == batch_bits,
    }
}

fn check(m: &Measurement) {
    let mk = &m.report.makespan;
    assert!(
        m.bits_identical,
        "{}: scheduled result bits diverged from serial",
        m.shape
    );
    assert!(
        mk.makespan_ns <= mk.request_granularity_ns + 1e-6,
        "{}: interleaved makespan {} exceeds request-granularity {}",
        m.shape,
        mk.makespan_ns,
        mk.request_granularity_ns
    );
    assert!(
        (mk.interleave_recovered_ns - (mk.request_granularity_ns - mk.makespan_ns).max(0.0)).abs()
            < 1e-6,
        "{}: recovered time must equal the model gap",
        m.shape
    );
    assert!(
        mk.makespan_ns <= m.report.serial_time_ns + 1e-6,
        "{}: makespan exceeds the serial command stream",
        m.shape
    );
    assert!(
        m.lookahead_planned_ns <= m.greedy_planned_ns + 1e-6,
        "{}: lookahead plan ({}) worse than greedy ({})",
        m.shape,
        m.lookahead_planned_ns,
        m.greedy_planned_ns
    );
    assert!(
        mk.rrd_faw_stall_ns >= 0.0 && mk.bus_conflict_stall_ns >= 0.0,
        "{}: stall accounts must be non-negative",
        m.shape
    );
    let (min_tightening, min_lookahead_win) = match m.shape {
        "mixed_fan_in" => (MIXED_MIN_TIGHTENING, MIXED_MIN_LOOKAHEAD_WIN),
        "bus_hog" => (BUS_HOG_MIN_TIGHTENING, 0.0),
        "fanin_trap" => (0.0, TRAP_MIN_LOOKAHEAD_WIN),
        _ => (0.0, 0.0),
    };
    assert!(
        m.tightening() >= min_tightening,
        "{}: interleaving recovered only {:.1}% of the \
         request-granularity makespan (pinned ≥ {:.0}%)",
        m.shape,
        m.tightening() * 100.0,
        min_tightening * 100.0
    );
    assert!(
        m.lookahead_win() >= min_lookahead_win,
        "{}: lookahead improved on greedy by only {:.1}% (pinned ≥ {:.0}%)",
        m.shape,
        m.lookahead_win() * 100.0,
        min_lookahead_win * 100.0
    );
}

fn print_row(m: &Measurement) {
    let mk = &m.report.makespan;
    println!(
        "{:<12} {:>3} req | serial {:>9.1} ns | coarse {:>9.1} ns | interleaved {:>9.1} ns ({:>5.1}% tighter) | plan: greedy {:>9.1} ns, lookahead {:>9.1} ns ({:>4.1}% better)",
        m.shape,
        m.requests,
        m.report.serial_time_ns,
        mk.request_granularity_ns,
        mk.makespan_ns,
        m.tightening() * 100.0,
        m.greedy_planned_ns,
        m.lookahead_planned_ns,
        m.lookahead_win() * 100.0,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        for m in [
            measure("small", |s| build_uniform(s, 24, 4, 1 << 14)),
            measure("bus_hog", build_bus_hog),
            measure("fanin_trap", build_fanin_trap),
            measure("mixed_fan_in", build_mixed_fan_in),
        ] {
            check(&m);
            print_row(&m);
        }
        println!("smoke OK (correctness only; no BENCH_schedule.json written)");
        return;
    }

    let rows: Vec<Measurement> = vec![
        measure("small", |s| build_uniform(s, 24, 4, 1 << 14)),
        measure("medium", |s| build_uniform(s, 48, 6, 1 << 16)),
        measure("large", |s| build_uniform(s, 96, 8, 1 << 18)),
        measure("bus_hog", build_bus_hog),
        measure("fanin_trap", build_fanin_trap),
        measure("mixed_fan_in", build_mixed_fan_in),
    ];
    println!("# Request-granularity vs command-interleaved makespan");
    for m in &rows {
        check(m);
        print_row(m);
    }

    let json = format!(
        "{{\n  \"tightening_definition\": \"interleave_recovered_ns / \
         request_granularity_ns: the fraction of the request-granularity \
         (fused) makespan the command-interleaved placement recovers. \
         lookahead_win is 1 - lookahead_planned_ns / greedy_planned_ns \
         under planned_makespan_ns. All quantities are deterministic \
         model time, not wall clock.\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(Measurement::to_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_schedule.json", &json).expect("write BENCH_schedule.json");
    println!("wrote BENCH_schedule.json");
}
