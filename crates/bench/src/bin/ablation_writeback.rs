//! Ablation: the Fig. 8a write-driver modification.
//!
//! Pinatubo feeds operation results from the sense amplifiers straight
//! into the local write drivers (in-place update). Without that path, a
//! result must be exported over the global data lines and the DDR bus to
//! the controller and written back conventionally. This study quantifies
//! what the two added transistors per write driver buy.
//!
//! Run with `cargo run --release -p pinatubo-bench --bin ablation_writeback`.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor};
use pinatubo_core::{BitwiseOp, BulkOp, PinatuboConfig};
use pinatubo_mem::MemConfig;

fn main() {
    println!("# Ablation — in-place write-back (Fig. 8a) vs bus export");
    println!(
        "{:<26}{:>14}{:>16}{:>14}{:>16}",
        "op", "in-place (us)", "in-place (nJ)", "export (us)", "export (nJ)"
    );
    // One scoped worker per workload; rows print in input order.
    let rows = pinatubo_bench::parallel_map(
        vec![
            ("2-row OR, 2^14 bits", 2usize, 1u64 << 14),
            ("2-row OR, 2^19 bits", 2, 1 << 19),
            ("128-row OR, 2^19 bits", 128, 1 << 19),
        ],
        |(label, operands, bits)| {
            let op = BulkOp::intra(BitwiseOp::Or, operands, bits);
            let with = PinatuboExecutor::multi_row().execute(&op);
            let mut without = PinatuboExecutor::with_config(
                "Pinatubo/no-wd",
                MemConfig::pcm_default(),
                PinatuboConfig::multi_row().without_in_place_write_back(),
            );
            let exported = without.execute(&op);
            format!(
                "{:<26}{:>14.2}{:>16.2}{:>14.2}{:>16.2}",
                label,
                with.time_ns / 1000.0,
                with.energy_pj / 1000.0,
                exported.time_ns / 1000.0,
                exported.energy_pj / 1000.0
            )
        },
    );
    for row in rows {
        println!("{row}");
    }
}
