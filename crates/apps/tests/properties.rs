//! Property tests for the application layer: every in-memory kernel must
//! agree with its scalar reference on arbitrary inputs.

use pinatubo_apps::database::{BitmapIndex, Query, TableSpec};
use pinatubo_apps::genomics::kmer_presence_bits;
use pinatubo_apps::image::BitPlaneChannel;
use pinatubo_apps::VectorWorkload;
use pinatubo_runtime::{MappingPolicy, PimSystem};
use proptest::prelude::*;

fn sys() -> PimSystem {
    PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The bit-serial threshold comparator equals `pixel > t` for random
    /// images and thresholds.
    #[test]
    fn image_comparator_is_exact(
        pixels in prop::collection::vec(any::<u8>(), 1..400),
        threshold in any::<u8>(),
    ) {
        let mut s = sys();
        let channel = BitPlaneChannel::load(pixels, &mut s).expect("load");
        let mask = channel.threshold_mask(threshold, &mut s).expect("mask");
        prop_assert_eq!(s.load(&mask), channel.threshold_reference(threshold));
    }

    /// Bitmap-index queries equal the scalar filter for arbitrary tables
    /// and queries.
    #[test]
    fn database_queries_are_exact(
        rows in 64u64..2048,
        seed in any::<u64>(),
        query_seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let spec = TableSpec { rows, attributes: 3, bins: 8, seed };
        let mut s = sys();
        let index = BitmapIndex::build(spec, &mut s).expect("build");
        let mut rng = rand::rngs::StdRng::seed_from_u64(query_seed);
        for _ in 0..4 {
            let q = Query::random(&spec, &mut rng);
            let got = index.run_query(&q, &mut s).expect("query").count;
            prop_assert_eq!(got, index.count_reference(&q));
        }
    }

    /// K-mer presence bitmaps: every set bit corresponds to a k-mer that
    /// actually occurs, and the popcount never exceeds the window count.
    #[test]
    fn kmer_bits_are_sound(
        sequence in prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..300),
        k in 1usize..=6,
    ) {
        let bits = kmer_presence_bits(&sequence, k);
        prop_assert_eq!(bits.len(), 1 << (2 * k));
        let count = bits.iter().filter(|&&b| b).count();
        let windows = sequence.len().saturating_sub(k - 1);
        prop_assert!(count <= windows);
        // Spot-check every set bit decodes to a substring of the input.
        for (code, _) in bits.iter().enumerate().filter(|&(_, &b)| b) {
            let mut kmer = vec![0u8; k];
            for (j, slot) in kmer.iter_mut().enumerate() {
                let shift = 2 * (k - 1 - j);
                *slot = [b'A', b'C', b'G', b'T'][(code >> shift) & 3];
            }
            let found = sequence.windows(k).any(|w| w == kmer.as_slice());
            prop_assert!(found, "k-mer {:?} not in input", String::from_utf8_lossy(&kmer));
        }
    }

    /// Vector workload names round-trip through the parser.
    #[test]
    fn vector_names_round_trip(
        len in 1u32..30,
        count in 1u32..30,
        rows in 0u32..10,
        random in any::<bool>(),
    ) {
        let w = VectorWorkload {
            len_log2: len,
            count_log2: count,
            rows_per_op_log2: rows,
            random_access: random,
        };
        prop_assert_eq!(VectorWorkload::parse(&w.to_string()), Some(w));
    }
}
