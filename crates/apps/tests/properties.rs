//! Randomized tests for the application layer: every in-memory kernel must
//! agree with its scalar reference on arbitrary inputs. Cases come from the
//! in-repo seedable [`SimRng`], so runs are deterministic.

use pinatubo_apps::database::{BitmapIndex, Query, TableSpec};
use pinatubo_apps::genomics::kmer_presence_bits;
use pinatubo_apps::image::BitPlaneChannel;
use pinatubo_apps::VectorWorkload;
use pinatubo_core::rng::SimRng;
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn sys() -> PimSystem {
    PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
}

/// The bit-serial threshold comparator equals `pixel > t` for random images
/// and thresholds.
#[test]
fn image_comparator_is_exact() {
    let mut rng = SimRng::seed_from_u64(0x1316);
    for _ in 0..24 {
        let len = 1 + rng.gen_index(399);
        let pixels: Vec<u8> = (0..len).map(|_| rng.gen_range_u64(0, 256) as u8).collect();
        let threshold = rng.gen_range_u64(0, 256) as u8;
        let mut s = sys();
        let channel = BitPlaneChannel::load(pixels, &mut s).expect("load");
        let mask = channel.threshold_mask(threshold, &mut s).expect("mask");
        assert_eq!(
            s.load(&mask),
            channel.threshold_reference(threshold),
            "threshold {threshold}"
        );
    }
    // The boundary thresholds as well.
    for threshold in [0u8, 255] {
        let pixels: Vec<u8> = (0..=255u16).map(|p| p as u8).collect();
        let mut s = sys();
        let channel = BitPlaneChannel::load(pixels, &mut s).expect("load");
        let mask = channel.threshold_mask(threshold, &mut s).expect("mask");
        assert_eq!(s.load(&mask), channel.threshold_reference(threshold));
    }
}

/// Bitmap-index queries equal the scalar filter for arbitrary tables and
/// queries.
#[test]
fn database_queries_are_exact() {
    let mut outer = SimRng::seed_from_u64(0xDB);
    for _ in 0..16 {
        let rows = 64 + outer.gen_range_u64(0, 2048 - 64);
        let spec = TableSpec {
            rows,
            attributes: 3,
            bins: 8,
            seed: outer.next_u64(),
        };
        let mut s = sys();
        let index = BitmapIndex::build(spec, &mut s).expect("build");
        let mut rng = SimRng::seed_from_u64(outer.next_u64());
        for _ in 0..4 {
            let q = Query::random(&spec, &mut rng);
            let got = index.run_query(&q, &mut s).expect("query").count;
            assert_eq!(got, index.count_reference(&q), "rows {rows}, query {q:?}");
        }
    }
}

/// K-mer presence bitmaps: every set bit corresponds to a k-mer that
/// actually occurs, and the popcount never exceeds the window count.
#[test]
fn kmer_bits_are_sound() {
    let mut rng = SimRng::seed_from_u64(0x63E);
    for _ in 0..48 {
        let len = rng.gen_index(300);
        let sequence: Vec<u8> = (0..len)
            .map(|_| [b'A', b'C', b'G', b'T'][rng.gen_index(4)])
            .collect();
        let k = 1 + rng.gen_index(6);
        let bits = kmer_presence_bits(&sequence, k);
        assert_eq!(bits.len(), 1 << (2 * k));
        let count = bits.iter().filter(|&&b| b).count();
        let windows = sequence.len().saturating_sub(k - 1);
        assert!(count <= windows);
        // Spot-check every set bit decodes to a substring of the input.
        for (code, _) in bits.iter().enumerate().filter(|&(_, &b)| b) {
            let mut kmer = vec![0u8; k];
            for (j, slot) in kmer.iter_mut().enumerate() {
                let shift = 2 * (k - 1 - j);
                *slot = [b'A', b'C', b'G', b'T'][(code >> shift) & 3];
            }
            let found = sequence.windows(k).any(|w| w == kmer.as_slice());
            assert!(
                found,
                "k-mer {:?} not in input",
                String::from_utf8_lossy(&kmer)
            );
        }
    }
}

/// Vector workload names round-trip through the parser.
#[test]
fn vector_names_round_trip() {
    let mut rng = SimRng::seed_from_u64(0x2A3);
    for _ in 0..256 {
        let w = VectorWorkload {
            len_log2: 1 + rng.gen_range_u64(0, 29) as u32,
            count_log2: 1 + rng.gen_range_u64(0, 29) as u32,
            rows_per_op_log2: rng.gen_range_u64(0, 10) as u32,
            random_access: rng.gen_bit(),
        };
        assert_eq!(VectorWorkload::parse(&w.to_string()), Some(w));
    }
}
