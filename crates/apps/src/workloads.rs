//! The Table 1 benchmark registry.
//!
//! Eleven workloads, exactly the paper's evaluation matrix: five Vector
//! configurations, three graph datasets, three database query counts.

use crate::bfs::frontier_bfs;
use crate::database::run_database_workload;
use crate::graph::{Graph, GraphProfile};
use crate::vector::VectorWorkload;
use crate::AppRun;
use pinatubo_runtime::{MappingPolicy, PimSystem};
use std::fmt;

/// Which family a benchmark belongs to (the grouping of Fig. 10–12).
#[derive(Debug, Clone, PartialEq)]
pub enum BenchmarkKind {
    /// Pure bit-vector OR operations.
    Vector(VectorWorkload),
    /// Bitmap BFS on a synthetic graph.
    Graph(GraphProfile),
    /// Bitmap-index database with N queries.
    Database {
        /// Queries to evaluate.
        queries: usize,
    },
}

/// One Table 1 benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Name as printed in the figures.
    pub name: String,
    /// The workload family and parameters.
    pub kind: BenchmarkKind,
}

impl Benchmark {
    /// All eleven Table 1 benchmarks, in figure order.
    #[must_use]
    pub fn table1() -> Vec<Benchmark> {
        let mut benchmarks: Vec<Benchmark> = VectorWorkload::table1()
            .into_iter()
            .map(|w| Benchmark {
                name: w.to_string(),
                kind: BenchmarkKind::Vector(w),
            })
            .collect();
        benchmarks.extend(GraphProfile::table1().into_iter().map(|p| Benchmark {
            name: p.name.to_owned(),
            kind: BenchmarkKind::Graph(p),
        }));
        benchmarks.extend([240, 480, 720].into_iter().map(|queries| Benchmark {
            name: queries.to_string(),
            kind: BenchmarkKind::Database { queries },
        }));
        benchmarks
    }

    /// Only the application benchmarks (graph + database), for the overall
    /// results of Fig. 12.
    #[must_use]
    pub fn applications() -> Vec<Benchmark> {
        Benchmark::table1()
            .into_iter()
            .filter(|b| !matches!(b.kind, BenchmarkKind::Vector(_)))
            .collect()
    }

    /// The figure group this benchmark is printed under.
    #[must_use]
    pub fn group(&self) -> &'static str {
        match self.kind {
            BenchmarkKind::Vector(_) => "Vector",
            BenchmarkKind::Graph(_) => "Graph",
            BenchmarkKind::Database { .. } => "Fastbit",
        }
    }

    /// Runs the benchmark and returns its recorded work.
    ///
    /// Graph and database workloads run end-to-end on a PIM system with
    /// the PIM-aware allocator; the Vector micro-benchmark generates its
    /// trace through the allocator alone (see [`VectorWorkload::run`]).
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to execute — Table 1 workloads always
    /// fit the default memory, so a failure is a bug, not an input error.
    #[must_use]
    pub fn run(&self) -> AppRun {
        let mut run = match &self.kind {
            BenchmarkKind::Vector(w) => w.run(),
            BenchmarkKind::Graph(profile) => {
                let graph = Graph::synthetic(profile);
                let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
                frontier_bfs(&graph, &mut sys)
                    .expect("Table 1 graph traversal fits the default memory")
                    .run
            }
            BenchmarkKind::Database { queries } => {
                let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
                run_database_workload(*queries, &mut sys)
                    .expect("Table 1 database workload fits the default memory")
            }
        };
        run.name = self.name.clone();
        run
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.group(), self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eleven_benchmarks() {
        let all = Benchmark::table1();
        assert_eq!(all.len(), 11);
        assert_eq!(all.iter().filter(|b| b.group() == "Vector").count(), 5);
        assert_eq!(all.iter().filter(|b| b.group() == "Graph").count(), 3);
        assert_eq!(all.iter().filter(|b| b.group() == "Fastbit").count(), 3);
    }

    #[test]
    fn applications_excludes_vector() {
        let apps = Benchmark::applications();
        assert_eq!(apps.len(), 6);
        assert!(apps.iter().all(|b| b.group() != "Vector"));
    }

    #[test]
    fn display_includes_group() {
        let all = Benchmark::table1();
        assert_eq!(all[0].to_string(), "Vector/19-16-1s");
        assert_eq!(all[5].to_string(), "Graph/dblp");
        assert_eq!(all[8].to_string(), "Fastbit/240");
    }

    #[test]
    fn database_benchmark_runs_end_to_end() {
        let b = Benchmark {
            name: "tiny".into(),
            kind: BenchmarkKind::Database { queries: 3 },
        };
        let run = b.run();
        assert_eq!(run.name, "tiny");
        assert!(!run.trace.is_empty());
        assert!(run.footprint_bytes > 0);
    }
}
