//! The Vector micro-benchmark (Table 1): pure bit-vector OR operations.
//!
//! A workload named `19-16-7s` performs OR operations over 2^19-bit
//! vectors, 2^16 vectors in total, 2^7 operand rows per operation, with
//! sequential (`s`, PIM-aware) or random (`r`, PIM-oblivious) placement.
//!
//! The workload produces its trace by *allocating* every vector through
//! the real [`pinatubo_runtime::PimAllocator`] and classifying each
//! operation's rows — so locality degradation at subarray boundaries and
//! under random placement emerges from the allocator, not from an assumed
//! distribution. No data is materialized (operation cost is
//! data-independent), which keeps 4 GB workloads cheap to generate.

use crate::AppRun;
use pinatubo_core::{BitwiseOp, BulkOp, OpClass};
use pinatubo_mem::{MemGeometry, RowAddr};
use pinatubo_runtime::{MappingPolicy, PimAllocator};
use std::fmt;

/// One Vector workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorWorkload {
    /// log2 of the bit-vector length.
    pub len_log2: u32,
    /// log2 of the number of vectors.
    pub count_log2: u32,
    /// log2 of the operand rows per OR operation.
    pub rows_per_op_log2: u32,
    /// Random (`r`) vs sequential (`s`) placement.
    pub random_access: bool,
}

impl VectorWorkload {
    /// Parses a Table 1 style name like `"19-16-7s"` or `"14-16-7r"`.
    ///
    /// Returns `None` for malformed names.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        let (body, suffix) = name.split_at(name.len().checked_sub(1)?);
        let random_access = match suffix {
            "s" => false,
            "r" => true,
            _ => return None,
        };
        let mut parts = body.split('-');
        let len_log2 = parts.next()?.parse().ok()?;
        let count_log2 = parts.next()?.parse().ok()?;
        let rows_per_op_log2 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(VectorWorkload {
            len_log2,
            count_log2,
            rows_per_op_log2,
            random_access,
        })
    }

    /// The five Table 1 configurations, in paper order.
    #[must_use]
    pub fn table1() -> Vec<VectorWorkload> {
        ["19-16-1s", "19-16-7s", "14-12-7s", "14-16-7s", "14-16-7r"]
            .iter()
            .map(|n| VectorWorkload::parse(n).expect("table constants parse"))
            .collect()
    }

    /// Vector length in bits.
    #[must_use]
    pub fn len_bits(&self) -> u64 {
        1 << self.len_log2
    }

    /// Number of vectors.
    #[must_use]
    pub fn vector_count(&self) -> u64 {
        1 << self.count_log2
    }

    /// Operand rows per OR operation.
    #[must_use]
    pub fn rows_per_op(&self) -> usize {
        1 << self.rows_per_op_log2
    }

    /// Operations in the workload.
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.vector_count() / self.rows_per_op() as u64
    }

    /// Total data footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.vector_count() * self.len_bits() / 8
    }

    /// Generates the workload's [`AppRun`].
    ///
    /// Vectors are allocated through the real allocator (grouped so that a
    /// PIM-aware OS would co-locate each operation's operands and result);
    /// each operation's locality is classified from the rows it actually
    /// received.
    #[must_use]
    pub fn run(&self) -> AppRun {
        // Random placement models a PIM-oblivious OS inside one rank (the
        // vectors still share a channel/rank, as the paper's
        // inter-subarray/bank-dominated 14-16-7r behaviour implies).
        let mut geometry = MemGeometry::pcm_default();
        let policy = if self.random_access {
            geometry.channels = 1;
            geometry.ranks_per_channel = 1;
            MappingPolicy::random()
        } else {
            MappingPolicy::SubarrayFirst
        };
        let mut allocator = PimAllocator::new(geometry.clone(), policy);

        let n = self.rows_per_op();
        let mut trace = Vec::with_capacity(self.op_count() as usize);
        for _ in 0..self.op_count() {
            // Operands + result allocated together, as the PIM-aware OS
            // lays out an operation group (§5).
            let group = allocator
                .alloc_group(n + 1, self.len_bits())
                .expect("workload fits the 64 GB address space");
            let rows: Vec<RowAddr> = group.iter().map(|v| v.rows()[0]).collect();
            trace.push(BulkOp {
                op: BitwiseOp::Or,
                operand_count: n,
                bits: self.len_bits(),
                locality: OpClass::classify(&rows),
            });
        }

        AppRun {
            name: self.to_string(),
            trace,
            // Pure vector kernels: only loop bookkeeping outside the ops.
            scalar_instructions: self.op_count() * 20,
            scalar_bytes: self.op_count() * 64,
            footprint_bytes: self.footprint_bytes(),
        }
    }
}

impl fmt::Display for VectorWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}-{}{}",
            self.len_log2,
            self.count_log2,
            self.rows_per_op_log2,
            if self.random_access { 'r' } else { 's' }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for name in ["19-16-1s", "19-16-7s", "14-12-7s", "14-16-7s", "14-16-7r"] {
            let w = VectorWorkload::parse(name).expect("parses");
            assert_eq!(w.to_string(), name);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "19-16-1", "19-16s", "a-b-cs", "19-16-1x", "19-16-1-2s"] {
            assert_eq!(VectorWorkload::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn op_count_divides_vectors() {
        let w = VectorWorkload::parse("19-16-7s").expect("parses");
        assert_eq!(w.op_count(), 1 << 9);
        assert_eq!(w.rows_per_op(), 128);
        assert_eq!(w.footprint_bytes(), 4 << 30);
    }

    #[test]
    fn sequential_placement_is_mostly_intra() {
        let w = VectorWorkload::parse("14-12-7s").expect("parses");
        let run = w.run();
        let intra = run
            .trace
            .iter()
            .filter(|o| o.locality == OpClass::IntraSubarray)
            .count();
        assert!(
            intra * 10 >= run.trace.len() * 8,
            "sequential placement should be >=80% intra-subarray ({intra}/{})",
            run.trace.len()
        );
    }

    #[test]
    fn random_placement_degrades_locality() {
        let w = VectorWorkload::parse("14-16-7r").expect("parses");
        let run = w.run();
        let intra = run
            .trace
            .iter()
            .filter(|o| o.locality == OpClass::IntraSubarray)
            .count();
        assert!(
            intra * 10 < run.trace.len(),
            "random placement should almost never stay intra-subarray"
        );
        // ... and stays inside the rank, per the paper's characterization.
        assert!(run
            .trace
            .iter()
            .all(|o| o.locality != OpClass::HostFallback));
    }

    #[test]
    fn trace_shape_matches_spec() {
        let w = VectorWorkload::parse("14-12-7s").expect("parses");
        let run = w.run();
        assert_eq!(run.trace.len(), w.op_count() as usize);
        for op in &run.trace {
            assert_eq!(op.op, BitwiseOp::Or);
            assert_eq!(op.operand_count, 128);
            assert_eq!(op.bits, 1 << 14);
        }
    }
}
