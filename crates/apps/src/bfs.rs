//! Bitmap-based breadth-first search (Table 1's Graph workload, after \[5\]).
//!
//! The traversal keeps three bitmaps in PIM memory — `visited`, the
//! frontier's reachable set, and the next frontier — and advances one
//! level with three bulk operations:
//!
//! 1. `reach = OR(adjacency rows of all frontier vertices)` — the multi-row
//!    operation Pinatubo executes in one activation per 128 rows;
//! 2. `next = reach AND (NOT visited)`;
//! 3. `visited = visited OR next`.
//!
//! Extracting the next frontier's vertex list and finding the next
//! unvisited component are *scalar* work, accounted into the [`AppRun`];
//! on loose graphs this dominates, which is why eswiki/amazon see little
//! overall speedup in the paper's Fig. 12 while dblp sees 1.37×.

use crate::graph::Graph;
use crate::AppRun;
use pinatubo_runtime::{PimBitVec, PimSystem, RuntimeError};

/// The outcome of a full-graph bitmap traversal.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// BFS level of each vertex (every vertex is eventually visited; the
    /// traversal restarts on each unvisited component).
    pub levels: Vec<u32>,
    /// Levels processed across all components.
    pub total_levels: u64,
    /// Connected components found.
    pub components: u64,
    /// The recorded work.
    pub run: AppRun,
}

/// Scalar reference BFS (component-restarting), for verification.
#[must_use]
pub fn bfs_levels_reference(graph: &Graph) -> Vec<u32> {
    let n = graph.node_count();
    let mut levels = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if levels[start] != u32::MAX {
            continue;
        }
        levels[start] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                let u = u as usize;
                if levels[u] == u32::MAX {
                    levels[u] = levels[v] + 1;
                    queue.push_back(u);
                }
            }
        }
    }
    levels
}

/// Runs the bitmap BFS over every component of `graph` on `sys`.
///
/// Adjacency bitmaps are stored first (workload setup, uncharged); the
/// measured region is the traversal. The system's trace and statistics are
/// reset at the start so the returned [`AppRun`] contains exactly this
/// traversal's work.
///
/// # Errors
///
/// Propagates allocation and operation failures from the runtime.
pub fn bitmap_bfs(graph: &Graph, sys: &mut PimSystem) -> Result<BfsResult, RuntimeError> {
    let n = graph.node_count();
    let bits = n as u64;

    // Setup: adjacency bitmaps, one row-aligned vector per vertex.
    let adj: Vec<PimBitVec> = (0..n)
        .map(|v| {
            let vec = sys.alloc(bits)?;
            sys.store(&vec, &graph.adjacency_bits(v))?;
            Ok(vec)
        })
        .collect::<Result<_, RuntimeError>>()?;
    let visited = sys.alloc(bits)?;
    let reach = sys.alloc(bits)?;
    let not_visited = sys.alloc(bits)?;
    let next = sys.alloc(bits)?;

    // Measured region starts here.
    sys.take_stats();
    let _ = sys.take_trace();
    let mut scalar_instructions: u64 = 0;
    let mut scalar_bytes: u64 = 0;

    let mut levels = vec![u32::MAX; n];
    let mut visited_host = vec![false; n];
    let mut total_levels = 0u64;
    let mut components = 0u64;

    let mut cursor = 0usize;
    loop {
        // Scalar: scan for the next unvisited vertex ("searching for an
        // unvisited bit-vector", the loose-graph bottleneck).
        let mut source = None;
        while cursor < n {
            scalar_instructions += 4;
            if !visited_host[cursor] {
                source = Some(cursor);
                break;
            }
            cursor += 1;
        }
        scalar_bytes += 8;
        let Some(source) = source else { break };
        components += 1;

        // Seed the component: the host writes the source bit into the
        // visited bitmap (a one-row write, counted as scalar work).
        visited_host[source] = true;
        levels[source] = 0;
        sys.store(&visited, &visited_host)?;
        scalar_instructions += 6;
        let mut frontier = vec![source];

        let mut level = 0u32;
        while !frontier.is_empty() {
            total_levels += 1;
            level += 1;

            // 1. reach = OR of the frontier's adjacency rows.
            let operands: Vec<&PimBitVec> = frontier.iter().map(|&v| &adj[v]).collect();
            if operands.len() == 1 {
                // A 1-vertex frontier still senses as a (degenerate) 2-row
                // OR of the row with itself.
                sys.or_many(&[operands[0], operands[0]], &reach)?;
            } else {
                sys.or_many(&operands, &reach)?;
            }
            // Scalar: assembling the operand list.
            scalar_instructions += 8 * frontier.len() as u64;

            // 2. next = reach AND NOT visited.
            sys.not(&visited, &not_visited)?;
            sys.bitwise(
                pinatubo_core::BitwiseOp::And,
                &[&reach, &not_visited],
                &next,
            )?;

            // 3. visited |= next.
            sys.or_many(&[&visited, &next], &visited)?;

            // Scalar: extract the next frontier from the bitmap.
            let next_bits = sys.load(&next);
            scalar_instructions += 2 * bits; // full bitmap scan
            scalar_bytes += bits / 8;
            frontier.clear();
            for (v, &set) in next_bits.iter().enumerate() {
                if set && !visited_host[v] {
                    visited_host[v] = true;
                    levels[v] = level;
                    frontier.push(v);
                    scalar_instructions += 12;
                }
            }
        }
    }

    let trace = sys.take_trace();
    let footprint_bytes = (n as u64 + 4) * bits / 8;
    Ok(BfsResult {
        levels,
        total_levels,
        components,
        run: AppRun {
            name: String::new(), // filled by the workload registry
            trace,
            scalar_instructions,
            scalar_bytes,
            footprint_bytes,
        },
    })
}

/// The outcome of a direction-optimizing frontier-bitmap traversal.
#[derive(Debug, Clone)]
pub struct FrontierBfsResult {
    /// BFS level of each vertex.
    pub levels: Vec<u32>,
    /// Levels advanced with bitmap (bulk bitwise) steps.
    pub bitmap_levels: u64,
    /// Levels advanced with scalar-only steps (small frontiers).
    pub scalar_levels: u64,
    /// Connected components found.
    pub components: u64,
    /// The recorded work.
    pub run: AppRun,
}

/// Direction-optimizing frontier-bitmap BFS — the paper-scale Graph
/// workload (after \[5\]).
///
/// The traversal keeps `visited`, `reach`, `not_visited`, `pruned` and a
/// prune-delta bitmap of `n` bits each, co-allocated for intra-subarray
/// operation, and picks a regime per level by frontier size:
///
/// * **bitmap regime** (frontier > n/16, bottom-up): four bulk ops —
///   `not_visited = NOT visited`; `pruned = reach AND not_visited`
///   (reach = the frontier's neighbor union from the scalar edge scan);
///   `delta = pruned XOR reach`; `visited = visited OR pruned`;
/// * **hybrid regime** (n/256 < frontier ≤ n/16): scalar expansion plus a
///   single bulk `visited OR next` merge;
/// * **scalar regime** (frontier ≤ n/256, top-down): no bulk operations.
///
/// Loose graphs (eswiki/amazon) rarely leave the scalar regime and spend
/// their time scanning for unvisited vertices, which is why Fig. 12 shows
/// them gaining little from PIM while dense dblp gains 1.37×.
///
/// # Errors
///
/// Propagates allocation and operation failures from the runtime.
pub fn frontier_bfs(graph: &Graph, sys: &mut PimSystem) -> Result<FrontierBfsResult, RuntimeError> {
    let n = graph.node_count();
    let bits = n as u64;
    // Regime thresholds: relative to the graph, with absolute floors so a
    // bitmap-width operation is never spent on a frontier of a few dozen
    // vertices (a sane implementation updates those sparsely).
    let bitmap_threshold = (n / 16).max(512);
    let hybrid_threshold = (n / 256).max(256);

    // The working bitmaps, co-allocated for intra-subarray operation.
    // The traversal runs in a closure so the group is released on every
    // exit path — an early operation error must not leak the five rows.
    let group = sys.alloc_group(5, bits)?;
    let [visited, reach, not_visited, pruned, delta]: [PimBitVec; 5] = group
        .try_into()
        .expect("alloc_group returns exactly the requested count");
    let result = (|| {
        sys.take_stats();
        let _ = sys.take_trace();
        let mut scalar_instructions = 0u64;
        let mut scalar_bytes = 0u64;

        let mut levels = vec![u32::MAX; n];
        let mut visited_host = vec![false; n];
        let mut visited_count = 0usize;
        let mut frontier: Vec<u32> = Vec::new();
        let mut bitmap_levels = 0u64;
        let mut scalar_levels = 0u64;
        let mut components = 0u64;

        // The PIM-side visited bitmap is synced lazily: pure-scalar levels set
        // this flag instead of rewriting the whole row per step. Assigned at
        // each component start, before any read.
        let mut visited_stale;
        // Reused scratch for the frontier's neighbor union.
        let mut reach_host = vec![false; n];
        let mut reach_touched: Vec<u32> = Vec::new();

        let mut cursor = 0usize;
        loop {
            // Scalar: scan for the next unvisited vertex ("searching for an
            // unvisited bit-vector") — the loose-graph bottleneck.
            let mut source = None;
            while cursor < n {
                scalar_instructions += 2;
                if !visited_host[cursor] {
                    source = Some(cursor);
                    break;
                }
                cursor += 1;
            }
            scalar_bytes += 8;
            let Some(source) = source else { break };
            components += 1;
            visited_host[source] = true;
            visited_count += 1;
            levels[source] = 0;
            visited_stale = true;
            frontier.clear();
            frontier.push(source as u32);

            let mut level = 0u32;
            while !frontier.is_empty() {
                level += 1;
                // Assemble the frontier's neighbor union (functionally; the
                // scalar *charge* depends on the regime below: top-down scans
                // the frontier's edges, bottom-up checks unvisited vertices).
                for &v in &reach_touched {
                    reach_host[v as usize] = false;
                }
                reach_touched.clear();
                let mut edges_scanned = 0u64;
                for &v in &frontier {
                    for &u in graph.neighbors(v as usize) {
                        if !reach_host[u as usize] {
                            reach_host[u as usize] = true;
                            reach_touched.push(u);
                        }
                        edges_scanned += 1;
                    }
                }

                if frontier.len() > bitmap_threshold {
                    // Bitmap (bottom-up) regime: each still-unvisited vertex
                    // probes its adjacency until it hits a frontier member.
                    let unvisited = (n - visited_count) as u64;
                    scalar_instructions += 4 * unvisited + bits / 16 + 50;
                    scalar_bytes += 12 * unvisited + bits / 8;
                    bitmap_levels += 1;

                    if visited_stale {
                        sys.store(&visited, &visited_host)?;
                        visited_stale = false;
                    }
                    sys.store(&reach, &reach_host)?;
                    scalar_instructions += bits / 16; // bitmap assembly, word-granular
                    scalar_bytes += bits / 8;

                    sys.not(&visited, &not_visited)?;
                    sys.bitwise(
                        pinatubo_core::BitwiseOp::And,
                        &[&reach, &not_visited],
                        &pruned,
                    )?;
                    sys.bitwise(pinatubo_core::BitwiseOp::Xor, &[&pruned, &reach], &delta)?;
                    sys.or_many(&[&visited, &pruned], &visited)?;

                    // Scalar: read the pruned bitmap back into the frontier.
                    let next_bits = sys.load(&pruned);
                    scalar_instructions += bits / 16;
                    scalar_bytes += bits / 8;
                    frontier.clear();
                    for (v, &set) in next_bits.iter().enumerate() {
                        if set {
                            visited_host[v] = true;
                            visited_count += 1;
                            levels[v] = level;
                            frontier.push(v as u32);
                        }
                    }
                } else {
                    // Scalar expansion (top-down): walk the reach set directly.
                    scalar_instructions += 3 * edges_scanned + 8 * frontier.len() as u64 + 50;
                    scalar_bytes += edges_scanned * 4;
                    scalar_levels += 1;

                    let mut next = Vec::new();
                    for &u in &reach_touched {
                        let v = u as usize;
                        if !visited_host[v] {
                            visited_host[v] = true;
                            visited_count += 1;
                            levels[v] = level;
                            next.push(u);
                            scalar_instructions += 10;
                        }
                    }
                    if frontier.len() > hybrid_threshold {
                        // Hybrid regime: merge the discovered set into the
                        // visited bitmap with one bulk OR.
                        let mut next_bits = vec![false; n];
                        for &u in &next {
                            next_bits[u as usize] = true;
                        }
                        if visited_stale {
                            sys.store(&visited, &visited_host)?;
                            visited_stale = false;
                        }
                        sys.store(&reach, &next_bits)?;
                        sys.or_many(&[&visited, &reach], &visited)?;
                        scalar_bytes += bits / 8;
                    } else {
                        // Pure scalar regime: the PIM-side bitmap is synced
                        // lazily before the next bulk operation.
                        visited_stale = true;
                    }
                    frontier = next;
                }
            }
        }

        let trace = sys.take_trace();
        // CSR edges + per-vertex records (labels, offsets, queue slots) + the
        // working bitmaps: what the processor-side run actually streams.
        let footprint_bytes = graph.edge_count() * 8 + bits * 64 + 5 * bits / 8;
        Ok(FrontierBfsResult {
            levels,
            bitmap_levels,
            scalar_levels,
            components,
            run: AppRun {
                name: String::new(),
                trace,
                scalar_instructions,
                scalar_bytes,
                footprint_bytes,
            },
        })
    })();
    sys.release_vecs([&visited, &reach, &not_visited, &pruned, &delta]);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphProfile;
    use pinatubo_runtime::MappingPolicy;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    #[test]
    fn bfs_matches_reference_on_a_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut s = sys();
        let result = bitmap_bfs(&g, &mut s).expect("bfs");
        assert_eq!(result.levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(result.components, 1);
    }

    #[test]
    fn bfs_matches_reference_on_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (3, 4), (4, 5)]);
        let mut s = sys();
        let result = bitmap_bfs(&g, &mut s).expect("bfs");
        assert_eq!(result.levels, bfs_levels_reference(&g));
        assert_eq!(result.components, 3); // {0,1}, {2}, {3,4,5}
    }

    #[test]
    fn bfs_matches_reference_on_synthetic_graphs() {
        for profile in [GraphProfile::eswiki(), GraphProfile::amazon()] {
            let mut small = profile;
            small.nodes = 256;
            let g = Graph::synthetic(&small);
            let mut s = sys();
            let result = bitmap_bfs(&g, &mut s).expect("bfs");
            assert_eq!(
                result.levels,
                bfs_levels_reference(&g),
                "profile {}",
                profile.name
            );
        }
    }

    #[test]
    fn bfs_records_bitwise_work() {
        let g = Graph::from_edges(8, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut s = sys();
        let result = bitmap_bfs(&g, &mut s).expect("bfs");
        assert!(!result.run.trace.is_empty());
        assert!(result.run.scalar_instructions > 0);
        // Every level issues OR + NOT + AND + OR.
        assert!(result.run.trace.len() as u64 >= result.total_levels * 4);
    }

    #[test]
    fn frontier_bfs_matches_reference() {
        for profile in [
            GraphProfile::dblp().scaled(512),
            GraphProfile::eswiki().scaled(512),
        ] {
            let g = Graph::synthetic(&profile);
            let mut s = sys();
            let result = frontier_bfs(&g, &mut s).expect("frontier bfs");
            assert_eq!(
                result.levels,
                bfs_levels_reference(&g),
                "profile {}",
                profile.name
            );
            // The PIM-side visited bitmap agrees with the host truth.
            assert!(result.components > 0);
        }
    }

    #[test]
    fn dense_graphs_use_bitmap_levels_loose_graphs_do_not() {
        let dense = Graph::synthetic(&GraphProfile::dblp().scaled(8192));
        let loose = Graph::synthetic(&GraphProfile::eswiki().scaled(8192));
        let d = frontier_bfs(&dense, &mut sys()).expect("dense");
        let l = frontier_bfs(&loose, &mut sys()).expect("loose");
        assert!(
            d.bitmap_levels >= 2,
            "dblp-like BFS must hit the bitmap regime ({}/{})",
            d.bitmap_levels,
            d.scalar_levels
        );
        // The loose traversal covers far fewer of its vertices through
        // bitmap-regime levels; its op trace is correspondingly lighter.
        assert!(
            l.run.bitwise_operand_bits() < d.run.bitwise_operand_bits() / 2,
            "loose traversal should do far less bulk bitwise work ({} vs {})",
            l.run.bitwise_operand_bits(),
            d.run.bitwise_operand_bits()
        );
    }

    #[test]
    fn frontier_bfs_records_all_four_op_kinds() {
        let g = Graph::synthetic(&GraphProfile::dblp().scaled(1024));
        let mut s = sys();
        let result = frontier_bfs(&g, &mut s).expect("bfs");
        use pinatubo_core::BitwiseOp;
        for op in [
            BitwiseOp::Or,
            BitwiseOp::And,
            BitwiseOp::Xor,
            BitwiseOp::Not,
        ] {
            assert!(
                result.run.trace.iter().any(|o| o.op == op),
                "trace should contain {op}"
            );
        }
    }

    #[test]
    fn dense_graph_has_fewer_levels_than_loose() {
        let mut dense_p = GraphProfile::dblp();
        dense_p.nodes = 256;
        let mut loose_p = GraphProfile::eswiki();
        loose_p.nodes = 256;
        let dense = bitmap_bfs(&Graph::synthetic(&dense_p), &mut sys()).expect("dense");
        let loose = bitmap_bfs(&Graph::synthetic(&loose_p), &mut sys()).expect("loose");
        assert!(dense.components < loose.components);
    }
}
