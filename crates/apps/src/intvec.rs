//! Integer-vector kernels on the bit-serial µ-program framework.
//!
//! The paper's workloads are pure bitwise; this module shows the same
//! memory doing narrow integer arithmetic SIMDRAM-style: vectors live
//! bit-transposed ([`TransposedVec`]) and each kernel compiles to a batch
//! of multi-row activations via `runtime::microcode`. The composite
//! kernels are chosen to exercise the compiler's fusion/CSE:
//!
//! * [`saturating_sub`] — `max(a - b, 0)`: the `Sub` difference and the
//!   `CmpGe` underflow mask share one borrow chain under CSE, then the
//!   mask gates every difference plane with plain ANDs.
//! * [`range_mask`] — `lo <= v <= hi` as two constant comparisons whose
//!   folded chains share the value's planes, combined with AND/NOT.
//!
//! Every kernel has a pinned scalar reference next to it.

use crate::AppRun;
use pinatubo_core::rng::SimRng;
use pinatubo_core::{ArithOp, BitwiseOp};
use pinatubo_runtime::microcode::{self, CompileOptions, MicroProgram, TransposedVec};
use pinatubo_runtime::{PimBitVec, PimSystem, RuntimeError};

/// Computes `max(a - b, 0)` lanewise into a freshly allocated transposed
/// vector. One fused µ-program batch computes the wrapped difference and
/// the `a >= b` mask over a shared borrow chain; the mask then gates each
/// difference plane.
///
/// # Errors
///
/// Propagates allocation/operation failures.
///
/// # Panics
///
/// Panics if `a` and `b` differ in shape.
pub fn saturating_sub(
    a: &TransposedVec,
    b: &TransposedVec,
    sys: &mut PimSystem,
) -> Result<TransposedVec, RuntimeError> {
    assert_eq!(a.lanes(), b.lanes(), "lane counts must match");
    assert_eq!(a.width_bits(), b.width_bits(), "widths must match");
    let out = sys.alloc_transposed(a.lanes(), a.width_bits())?;
    let mask = match sys.alloc(a.lanes()) {
        Ok(mask) => mask,
        Err(e) => {
            sys.release_vecs(out.planes());
            return Err(e);
        }
    };
    let programs = [
        MicroProgram::sub(a, b, &out),
        MicroProgram::cmp_ge(a, b, &mask),
    ];
    let result = microcode::run(&programs, CompileOptions::default(), sys).and_then(|_| {
        // Underflowed lanes wrapped: zero them by ANDing every plane with
        // the no-borrow mask.
        for plane in out.planes() {
            sys.bitwise(BitwiseOp::And, &[plane, &mask], plane)?;
        }
        Ok(())
    });
    sys.release_vecs(std::iter::once(&mask));
    match result {
        Ok(()) => Ok(out),
        Err(e) => {
            sys.release_vecs(out.planes());
            Err(e)
        }
    }
}

/// Scalar reference for [`saturating_sub`].
#[must_use]
pub fn saturating_sub_reference(a: &[u64], b: &[u64], width_bits: u32) -> Vec<u64> {
    let mask = ArithOp::lane_mask(width_bits);
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x & mask).saturating_sub(y & mask))
        .collect()
}

/// Computes the lanewise mask `lo <= v <= hi` into a freshly allocated
/// bit-vector. Compiles both constant comparisons in one batch — their
/// folded ladders share `v`'s planes — then combines them as
/// `(v >= lo) AND NOT (v > hi)`.
///
/// # Errors
///
/// Propagates allocation/operation failures.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn range_mask(
    v: &TransposedVec,
    lo: u64,
    hi: u64,
    sys: &mut PimSystem,
) -> Result<PimBitVec, RuntimeError> {
    assert!(lo <= hi, "range bounds out of order");
    let scratch = sys.alloc_group(2, v.lanes())?;
    let (ge_lo, above_hi) = (&scratch[0], &scratch[1]);
    let programs = [
        MicroProgram::cmp_ge_const(v, lo, ge_lo),
        MicroProgram::threshold_const(v, hi, above_hi),
    ];
    let result = microcode::run(&programs, CompileOptions::default(), sys).and_then(|_| {
        let out = sys.alloc(v.lanes())?;
        // in-range = (v >= lo) AND NOT (v > hi), reusing above_hi in place.
        if let Err(e) = sys
            .not(above_hi, above_hi)
            .and_then(|_| sys.bitwise(BitwiseOp::And, &[ge_lo, above_hi], &out))
        {
            sys.release_vecs(std::iter::once(&out));
            return Err(e);
        }
        Ok(out)
    });
    sys.release_vecs(&scratch);
    result
}

/// Scalar reference for [`range_mask`].
#[must_use]
pub fn range_mask_reference(v: &[u64], lo: u64, hi: u64, width_bits: u32) -> Vec<bool> {
    let mask = ArithOp::lane_mask(width_bits);
    v.iter()
        .map(|&x| {
            let x = x & mask;
            x >= lo && x <= hi
        })
        .collect()
}

/// Runs the integer-vector workload: load two synthetic measure vectors,
/// compute clipped differences, running maxima and band masks, and
/// account the work as an [`AppRun`].
///
/// # Errors
///
/// Propagates allocation/operation failures.
pub fn run_intvec_workload(
    lanes: u64,
    width_bits: u32,
    rounds: usize,
    sys: &mut PimSystem,
) -> Result<AppRun, RuntimeError> {
    let max = ArithOp::lane_mask(width_bits);
    let mut rng = SimRng::seed_from_u64(0x1EC7);
    let make = |rng: &mut SimRng| -> Vec<u64> {
        (0..lanes).map(|_| rng.gen_range_u64(0, max + 1)).collect()
    };
    let a_values = make(&mut rng);
    let b_values = make(&mut rng);
    let a = sys.alloc_transposed(lanes, width_bits)?;
    let b = sys.alloc_transposed(lanes, width_bits)?;
    let mut peak = sys.alloc_transposed(lanes, width_bits)?;
    sys.store_lanes(&a, &a_values)?;
    sys.store_lanes(&b, &b_values)?;
    sys.store_lanes(&peak, &vec![0; lanes as usize])?;

    // Measured region: the kernels.
    sys.take_stats();
    let _ = sys.take_trace();
    let mut scalar_instructions = 0u64;
    let mut scalar_bytes = 0u64;
    for round in 0..rounds {
        let diff = saturating_sub(&a, &b, sys)?;
        // Track the largest clipped difference seen so far. µ-program
        // destinations may not alias their inputs, so the running peak
        // ping-pongs into a fresh vector and the old one is recycled.
        let next = sys.alloc_transposed(lanes, width_bits)?;
        microcode::run(
            &[MicroProgram::max(&diff, &peak, &next)],
            CompileOptions::default(),
            sys,
        )?;
        sys.release_vecs(diff.planes());
        sys.release_vecs(peak.planes());
        peak = next;

        let band = range_mask(&a, max / 4 * (round as u64 % 3), max / 2 + max / 4, sys)?;
        let hits = sys.count_ones(&band);
        sys.release_vecs(std::iter::once(&band));
        // Scalar: aggregate over the selected lanes.
        scalar_instructions += 25 * hits + lanes / 32;
        scalar_bytes += 8 * hits;
    }

    Ok(AppRun {
        name: format!("intvec-{lanes}x{width_bits}b"),
        trace: sys.take_trace(),
        scalar_instructions,
        scalar_bytes,
        footprint_bytes: lanes * u64::from(width_bits) / 8 * 3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_runtime::MappingPolicy;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    fn load_vec(values: &[u64], width: u32, s: &mut PimSystem) -> TransposedVec {
        let v = s
            .alloc_transposed(values.len() as u64, width)
            .expect("alloc");
        s.store_lanes(&v, values).expect("store");
        v
    }

    #[test]
    fn saturating_sub_matches_reference() {
        let mut s = sys();
        let width = 10;
        let max = ArithOp::lane_mask(width);
        let mut rng = SimRng::seed_from_u64(21);
        let mut a_values: Vec<u64> = (0..300).map(|_| rng.gen_range_u64(0, max + 1)).collect();
        let mut b_values: Vec<u64> = (0..300).map(|_| rng.gen_range_u64(0, max + 1)).collect();
        // Pin the clip corners: equal, off-by-one both ways, extremes.
        let pins = [(5, 5), (5, 6), (6, 5), (0, max), (max, 0)];
        for (slot, pin) in a_values.iter_mut().zip(b_values.iter_mut()).zip(pins) {
            (*slot.0, *slot.1) = pin;
        }
        let a = load_vec(&a_values, width, &mut s);
        let b = load_vec(&b_values, width, &mut s);
        let free_before = s.allocator().free_rows();
        let out = saturating_sub(&a, &b, &mut s).expect("kernel");
        assert_eq!(
            s.load_lanes(&out),
            saturating_sub_reference(&a_values, &b_values, width)
        );
        s.release_vecs(out.planes());
        // Mask + comparator scratch must round-trip the free pool.
        assert_eq!(s.allocator().free_rows(), free_before);
    }

    #[test]
    fn range_mask_matches_reference() {
        let mut s = sys();
        let width = 8;
        let values: Vec<u64> = (0..=255).collect();
        let v = load_vec(&values, width, &mut s);
        let free_before = s.allocator().free_rows();
        for (lo, hi) in [(0, 255), (0, 0), (255, 255), (17, 171), (100, 100)] {
            let mask = range_mask(&v, lo, hi, &mut s).expect("kernel");
            let got = s.load(&mask);
            s.release_vecs(std::iter::once(&mask));
            assert_eq!(
                got,
                range_mask_reference(&values, lo, hi, width),
                "range [{lo}, {hi}]"
            );
        }
        assert_eq!(s.allocator().free_rows(), free_before);
    }

    #[test]
    fn workload_runs_and_recycles_rows() {
        let mut s = sys();
        let run = run_intvec_workload(512, 8, 2, &mut s).expect("workload");
        assert!(!run.trace.is_empty());
        assert!(run.trace.iter().any(|o| o.op == BitwiseOp::Xor));
        assert!(run.scalar_instructions > 0);
    }

    #[test]
    #[should_panic(expected = "range bounds out of order")]
    fn inverted_range_is_rejected() {
        let mut s = sys();
        let values = [1u64, 2, 3];
        let v = load_vec(&values, 4, &mut s);
        let _ = range_mask(&v, 3, 1, &mut s);
    }
}
