//! The paper's evaluation workloads (Table 1).
//!
//! Three application families, each producing an [`AppRun`]: an abstract
//! bulk-operation trace (priced by every executor for Fig. 10/11) plus a
//! scalar-work account (priced once on the CPU model, common to all
//! executors, which is what limits the overall speedups of Fig. 12).
//!
//! * [`vector`] — pure bit-vector OR micro-benchmarks, named
//!   `19-16-1s`-style: 2^19-bit vectors, 2^16 of them, 2^1-row OR ops,
//!   sequential (`s`) or random (`r`) placement.
//! * [`graph`] + [`bfs`] — bitmap-based breadth-first search. Synthetic
//!   graphs with the connectivity character of the paper's dblp-2010 /
//!   eswiki-2013 / amazon-2008 datasets stand in for the originals (see
//!   `DESIGN.md` §4 for why the substitution preserves the result shape).
//! * [`database`] — a FastBit-style equality-encoded bitmap index over a
//!   synthetic STAR-like event table, answering multi-attribute range
//!   queries with multi-row ORs and ANDs.
//!
//! [`workloads`] registers all eleven Table 1 benchmarks for the figure
//! harnesses.

#![warn(missing_docs)]

pub mod bfs;
pub mod database;
pub mod genomics;
pub mod graph;
pub mod image;
pub mod intvec;
pub mod vector;
pub mod workloads;

pub use bfs::{BfsResult, FrontierBfsResult};
pub use database::{BitmapIndex, Query};
pub use graph::{Graph, GraphProfile};
pub use vector::VectorWorkload;
pub use workloads::{Benchmark, BenchmarkKind};

use pinatubo_core::trace::OpTrace;

/// What one application run produced: the bitwise work (as a trace, priced
/// per executor) and the scalar work (common to all executors).
#[derive(Debug, Clone, Default)]
pub struct AppRun {
    /// Workload name as it appears in the figures.
    pub name: String,
    /// The bulk bitwise operations the application issued.
    pub trace: OpTrace,
    /// Scalar instructions executed outside the bitwise kernels.
    pub scalar_instructions: u64,
    /// Bytes the scalar part touched.
    pub scalar_bytes: u64,
    /// Total data footprint, for the CPU cache model.
    pub footprint_bytes: u64,
}

impl AppRun {
    /// Total operand bits across the bitwise trace.
    #[must_use]
    pub fn bitwise_operand_bits(&self) -> u64 {
        pinatubo_core::trace::trace_operand_bits(&self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_core::{BitwiseOp, BulkOp};

    #[test]
    fn app_run_totals() {
        let run = AppRun {
            name: "test".into(),
            trace: vec![BulkOp::intra(BitwiseOp::Or, 4, 100)],
            scalar_instructions: 10,
            scalar_bytes: 20,
            footprint_bytes: 30,
        };
        assert_eq!(run.bitwise_operand_bits(), 400);
    }
}
