//! Bit-plane image processing — the paper's §3 motivates bulk bitwise
//! operations with image processing \[6\] (fast color segmentation); this
//! module builds that workload on Pinatubo.
//!
//! An 8-bit grayscale channel is stored bit-transposed
//! ([`TransposedVec`]): plane `k` holds bit `k` of every pixel. A
//! threshold test `pixel > t` is then exactly the runtime's
//! `ThresholdConst` µ-op — the magnitude-comparison ladder this module
//! used to hand-roll now comes from `runtime::microcode`, which folds the
//! constant's planes away and fuses the chain (one AND or OR per bit
//! position after absorption). [`BitPlaneChannel::threshold_reference`]
//! stays as the pinned scalar oracle.
//!
//! Color segmentation ANDs per-channel threshold masks together — the
//! same conjunctive structure as the database workload, on image data.

use crate::AppRun;
use pinatubo_core::rng::SimRng;
use pinatubo_core::BitwiseOp;
use pinatubo_runtime::microcode::{self, CompileOptions, MicroProgram, TransposedVec};
use pinatubo_runtime::{PimBitVec, PimSystem, RuntimeError};

/// One 8-bit image channel resident in PIM memory as bit planes.
#[derive(Debug)]
pub struct BitPlaneChannel {
    pixels: Vec<u8>,
    /// The bit-transposed pixel data: plane `k` holds bit `k`.
    planes: TransposedVec,
}

impl BitPlaneChannel {
    /// Bit planes per 8-bit channel.
    pub const PLANES: usize = 8;

    /// Loads a pixel buffer into bit planes (setup, uncharged).
    ///
    /// # Errors
    ///
    /// Propagates allocation/store failures.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` is empty.
    pub fn load(pixels: Vec<u8>, sys: &mut PimSystem) -> Result<Self, RuntimeError> {
        assert!(!pixels.is_empty(), "an image needs at least one pixel");
        let lanes = pixels.len() as u64;
        let planes = sys.alloc_transposed(lanes, Self::PLANES as u32)?;
        let values: Vec<u64> = pixels.iter().map(|&p| u64::from(p)).collect();
        if let Err(e) = sys.store_lanes(&planes, &values) {
            // Don't leak the placement group on a failed load.
            sys.release_vecs(planes.planes());
            return Err(e);
        }
        Ok(BitPlaneChannel { pixels, planes })
    }

    /// A synthetic test image: a smooth gradient with bright blobs, the
    /// kind of content segmentation thresholds carve up.
    #[must_use]
    pub fn synthetic_pixels(width: usize, height: usize, seed: u64) -> Vec<u8> {
        let mut rng = SimRng::seed_from_u64(seed);
        let blobs: Vec<(f64, f64, f64)> = (0..6)
            .map(|_| {
                (
                    rng.gen_range_f64(0.0, width as f64),
                    rng.gen_range_f64(0.0, height as f64),
                    rng.gen_range_f64(4.0, (width.min(height) as f64 / 3.0).max(5.0)),
                )
            })
            .collect();
        (0..height)
            .flat_map(|y| (0..width).map(move |x| (x, y)))
            .map(|(x, y)| {
                let gradient = 96.0 * x as f64 / width as f64;
                let blob: f64 = blobs
                    .iter()
                    .map(|&(bx, by, r)| {
                        let d2 = (x as f64 - bx).powi(2) + (y as f64 - by).powi(2);
                        150.0 * (-d2 / (r * r)).exp()
                    })
                    .sum();
                (gradient + blob).min(255.0) as u8
            })
            .collect()
    }

    /// Pixel count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Whether the channel is empty (never true — `load` requires pixels).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// The raw pixels (ground truth for verification).
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Computes the mask `pixel > threshold` via the `ThresholdConst`
    /// µ-op, returning a freshly allocated mask vector. Compilation folds
    /// the constant's uniform planes and recycles its scratch rows; the
    /// requests run through the batch planner.
    ///
    /// # Errors
    ///
    /// Propagates allocation/operation failures.
    pub fn threshold_mask(
        &self,
        threshold: u8,
        sys: &mut PimSystem,
    ) -> Result<PimBitVec, RuntimeError> {
        let mask = sys.alloc(self.pixels.len() as u64)?;
        let program = MicroProgram::threshold_const(&self.planes, u64::from(threshold), &mask);
        match microcode::run(&[program], CompileOptions::default(), sys) {
            Ok(_) => Ok(mask),
            Err(e) => {
                // The mask is half-written garbage: return its row too.
                sys.release_vecs(std::iter::once(&mask));
                Err(e)
            }
        }
    }

    /// Scalar reference mask.
    #[must_use]
    pub fn threshold_reference(&self, threshold: u8) -> Vec<bool> {
        self.pixels.iter().map(|&p| p > threshold).collect()
    }
}

/// A band segmentation `lo < pixel ≤ hi` across several channels:
/// per-channel masks ANDed together (the color-segmentation pattern).
///
/// # Errors
///
/// Propagates allocation/operation failures.
pub fn segment_band(
    channels: &[&BitPlaneChannel],
    lo: u8,
    hi: u8,
    sys: &mut PimSystem,
) -> Result<PimBitVec, RuntimeError> {
    assert!(
        !channels.is_empty(),
        "segmentation needs at least one channel"
    );
    assert!(lo <= hi, "band bounds out of order");
    let bits = channels[0].len() as u64;
    let mut masks = Vec::with_capacity(channels.len() * 2);
    for channel in channels {
        // pixel > lo
        masks.push(channel.threshold_mask(lo, sys)?);
        // NOT (pixel > hi)
        let above_hi = channel.threshold_mask(hi, sys)?;
        let in_range = sys.alloc(bits)?;
        sys.not(&above_hi, &in_range)?;
        masks.push(in_range);
    }
    let out = sys.alloc(bits)?;
    let refs: Vec<&PimBitVec> = masks.iter().collect();
    sys.bitwise(BitwiseOp::And, &refs, &out)?;
    Ok(out)
}

/// Runs the image workload: load a synthetic frame, compute a batch of
/// threshold masks and band segmentations, and account the work.
///
/// # Errors
///
/// Propagates allocation/operation failures.
pub fn run_image_workload(
    width: usize,
    height: usize,
    mask_count: usize,
    sys: &mut PimSystem,
) -> Result<AppRun, RuntimeError> {
    let channel = BitPlaneChannel::load(
        BitPlaneChannel::synthetic_pixels(width, height, 0x1AA6E),
        sys,
    )?;
    sys.take_stats();
    let _ = sys.take_trace();
    let mut scalar_instructions = 0u64;
    let mut scalar_bytes = 0u64;
    let mut rng = SimRng::seed_from_u64(0x5E6);
    for _ in 0..mask_count {
        let t = rng.gen_range_u64(16, 240) as u8;
        let mask = channel.threshold_mask(t, sys)?;
        // Scalar: consume the mask (connected components, moments, …).
        let hits = sys.count_ones(&mask);
        scalar_instructions += 40 * hits + channel.len() as u64 / 16;
        scalar_bytes += 16 * hits + channel.len() as u64 / 8;
    }
    Ok(AppRun {
        name: format!("image-{width}x{height}"),
        trace: sys.take_trace(),
        scalar_instructions,
        scalar_bytes,
        footprint_bytes: channel.len() as u64 * 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_runtime::MappingPolicy;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    #[test]
    fn threshold_mask_matches_reference() {
        let mut s = sys();
        let pixels = BitPlaneChannel::synthetic_pixels(64, 32, 7);
        let channel = BitPlaneChannel::load(pixels, &mut s).expect("load");
        for t in [0u8, 1, 63, 64, 127, 128, 200, 254, 255] {
            let mask = channel.threshold_mask(t, &mut s).expect("mask");
            let got = s.load(&mask);
            assert_eq!(got, channel.threshold_reference(t), "threshold {t}");
        }
    }

    #[test]
    fn exhaustive_comparator_on_all_pixel_values() {
        // One pixel of every possible value: the comparator must be exact
        // for the full 256 x sample-thresholds matrix.
        let mut s = sys();
        let pixels: Vec<u8> = (0..=255).collect();
        let channel = BitPlaneChannel::load(pixels, &mut s).expect("load");
        for t in (0..=255u8).step_by(17) {
            let mask = channel.threshold_mask(t, &mut s).expect("mask");
            let got = s.load(&mask);
            for (p, &m) in got.iter().enumerate() {
                assert_eq!(
                    m,
                    p as u8 as usize > t as usize,
                    "pixel {p} vs threshold {t}"
                );
            }
        }
    }

    #[test]
    fn band_segmentation_matches_reference() {
        let mut s = sys();
        let pixels = BitPlaneChannel::synthetic_pixels(48, 48, 9);
        let channel = BitPlaneChannel::load(pixels.clone(), &mut s).expect("load");
        let seg = segment_band(&[&channel], 80, 160, &mut s).expect("segment");
        let got = s.load(&seg);
        let want: Vec<bool> = pixels.iter().map(|&p| p > 80 && p <= 160).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn workload_uses_fused_comparator_ops() {
        let mut s = sys();
        let run = run_image_workload(64, 64, 3, &mut s).expect("workload");
        // The fused ThresholdConst chain const-folds the threshold's
        // planes and absorbs the NOTs, so for mid-range thresholds the
        // trace is pure AND/OR ladder steps.
        for op in [BitwiseOp::And, BitwiseOp::Or] {
            let used = run.trace.iter().any(|o| o.op == op);
            assert!(used, "trace should contain {op}");
        }
        assert!(run.scalar_instructions > 0);
    }

    #[test]
    #[should_panic(expected = "at least one pixel")]
    fn empty_image_is_rejected() {
        let mut s = sys();
        let _ = BitPlaneChannel::load(Vec::new(), &mut s);
    }
}
