//! The bitmap-index database workload (Table 1's Fastbit application,
//! after Wu's FastBit \[26\]).
//!
//! A table of `rows` events with several binned attributes is indexed with
//! equality-encoded bitmaps: one `rows`-bit bitmap per (attribute, bin),
//! set where the event falls in that bin. A multi-attribute range query
//! then evaluates as
//!
//! ```text
//! result = AND over attributes ( OR over bins in the attribute's range )
//! ```
//!
//! — per-attribute multi-row ORs followed by an AND chain, the exact
//! op mix Pinatubo accelerates. The synthetic event table stands in for
//! the STAR experiment data the paper queries (see `DESIGN.md` §4).

use crate::AppRun;
use pinatubo_core::rng::SimRng;
use pinatubo_core::BitwiseOp;
use pinatubo_runtime::microcode::{self, CompileOptions, MicroProgram, TransposedVec};
use pinatubo_runtime::{PimBitVec, PimSystem, RuntimeError};

/// Shape of the synthetic event table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableSpec {
    /// Events in the table.
    pub rows: u64,
    /// Binned attributes.
    pub attributes: usize,
    /// Bins per attribute.
    pub bins: usize,
    /// RNG seed for the synthetic data.
    pub seed: u64,
}

impl TableSpec {
    /// The STAR-like default: 2^20 events, 4 attributes × 16 bins — big
    /// enough that the bitmaps stream from main memory, as the paper's
    /// multi-terabyte event store does.
    #[must_use]
    pub fn star_like() -> Self {
        TableSpec {
            rows: 1 << 20,
            attributes: 4,
            bins: 16,
            seed: 0x57A2,
        }
    }
}

/// An equality-encoded bitmap index resident in PIM memory.
#[derive(Debug)]
pub struct BitmapIndex {
    spec: TableSpec,
    /// `columns[a][r]` = bin of event `r` in attribute `a` (ground truth
    /// for verification).
    columns: Vec<Vec<u8>>,
    /// `bitmaps[a][b]` = the (attribute a, bin b) bitmap.
    bitmaps: Vec<Vec<PimBitVec>>,
    /// Reusable per-attribute result buffers, co-located with the index so
    /// query operations stay intra-subarray.
    attr_scratch: Vec<PimBitVec>,
    /// Reusable final-result buffer.
    final_scratch: PimBitVec,
}

impl BitmapIndex {
    /// Generates the synthetic table and builds its index in `sys`
    /// (setup, uncharged — real deployments build the index once offline).
    ///
    /// # Errors
    ///
    /// Propagates allocation/store failures.
    pub fn build(spec: TableSpec, sys: &mut PimSystem) -> Result<Self, RuntimeError> {
        let mut rng = SimRng::seed_from_u64(spec.seed);
        // Event attributes cluster around detector-dependent peaks rather
        // than spreading uniformly; a simple triangular distribution gives
        // the bins realistic, unequal populations.
        let mut columns = Vec::with_capacity(spec.attributes);
        for _ in 0..spec.attributes {
            let column: Vec<u8> = (0..spec.rows)
                .map(|_| {
                    let a = rng.gen_range_u64(0, spec.bins as u64) as u32;
                    let b = rng.gen_range_u64(0, spec.bins as u64) as u32;
                    ((a + b) / 2) as u8
                })
                .collect();
            columns.push(column);
        }

        // The whole index plus the reusable query buffers is one placement
        // group: the PIM-aware allocator keeps it inside a subarray when it
        // fits, so query operations are intra-subarray (§5).
        let total_vectors = spec.attributes * spec.bins + spec.attributes + 1;
        let mut group = sys.alloc_group(total_vectors, spec.rows)?;
        let final_scratch = group.pop().expect("group includes the final buffer");
        let attr_scratch = group.split_off(spec.attributes * spec.bins);

        let mut bitmaps: Vec<Vec<PimBitVec>> = Vec::with_capacity(spec.attributes);
        let mut group_iter = group.into_iter();
        for column in &columns {
            let mut attr_maps = Vec::with_capacity(spec.bins);
            for bin in 0..spec.bins {
                let vec = group_iter.next().expect("group sized for all bitmaps");
                let bits: Vec<bool> = column.iter().map(|&c| usize::from(c) == bin).collect();
                if let Err(e) = sys.store(&vec, &bits) {
                    // A failed store must not leak the placement group:
                    // hand back every row — the bitmaps stored so far, this
                    // one, the untouched tail, and the query buffers.
                    attr_maps.push(vec);
                    let tail: Vec<PimBitVec> = group_iter.collect();
                    sys.release_vecs(
                        bitmaps
                            .iter()
                            .flatten()
                            .chain(&attr_maps)
                            .chain(&tail)
                            .chain(&attr_scratch)
                            .chain(std::iter::once(&final_scratch)),
                    );
                    return Err(e);
                }
                attr_maps.push(vec);
            }
            bitmaps.push(attr_maps);
        }
        Ok(BitmapIndex {
            spec,
            columns,
            bitmaps,
            attr_scratch,
            final_scratch,
        })
    }

    /// The table shape.
    #[must_use]
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Evaluates `query`, returning the matching event count. The
    /// bitwise work lands in `sys`'s trace/stats; scalar bookkeeping is
    /// returned for the caller to accumulate.
    ///
    /// # Errors
    ///
    /// Propagates allocation/operation failures.
    pub fn run_query(
        &self,
        query: &Query,
        sys: &mut PimSystem,
    ) -> Result<QueryOutcome, RuntimeError> {
        let mut scalar_instructions = 50; // parse/plan
        for (a, &(lo, hi)) in query.ranges.iter().enumerate() {
            let operands: Vec<&PimBitVec> = (lo..=hi)
                .map(|b| &self.bitmaps[a][usize::from(b)])
                .collect();
            scalar_instructions += 10 * operands.len() as u64;
            if operands.len() == 1 {
                // Single-bin range: materialize via a degenerate 2-row OR
                // (the planner could alias, but FastBit materializes too).
                sys.or_many(&[operands[0], operands[0]], &self.attr_scratch[a])?;
            } else {
                sys.or_many(&operands, &self.attr_scratch[a])?;
            }
        }

        // AND the per-attribute results together.
        let refs: Vec<&PimBitVec> = self.attr_scratch.iter().collect();
        if refs.len() == 1 {
            sys.bitwise(BitwiseOp::And, &[refs[0], refs[0]], &self.final_scratch)?;
        } else {
            sys.bitwise(BitwiseOp::And, &refs, &self.final_scratch)?;
        }

        let count = sys.count_ones(&self.final_scratch);
        // Scalar: fetch each hit's event record and aggregate over it —
        // the dominant non-bitwise cost of a FastBit query.
        scalar_instructions += 800 * count;
        Ok(QueryOutcome {
            count,
            scalar_instructions,
            scalar_bytes: self.spec.rows / 8 + 1100 * count,
        })
    }

    /// Scalar reference evaluation, for verification.
    #[must_use]
    pub fn count_reference(&self, query: &Query) -> u64 {
        (0..self.spec.rows as usize)
            .filter(|&r| {
                query.ranges.iter().enumerate().all(|(a, &(lo, hi))| {
                    let bin = self.columns[a][r];
                    bin >= lo && bin <= hi
                })
            })
            .count() as u64
    }

    /// Evaluates `query` with an aggregation pushdown: the measure
    /// predicate `column[r] >= min_value` is computed in PIM as a
    /// bit-serial comparison, ANDed into the bitmap result, and counted
    /// in memory — only the final count crosses the bus, instead of the
    /// base query's whole hit set.
    ///
    /// # Errors
    ///
    /// Propagates allocation/operation failures.
    ///
    /// # Panics
    ///
    /// Panics if `column` does not cover the table's rows.
    pub fn run_query_filtered(
        &self,
        query: &Query,
        column: &ValueColumn,
        min_value: u64,
        sys: &mut PimSystem,
    ) -> Result<QueryOutcome, RuntimeError> {
        assert_eq!(
            column.values().len() as u64,
            self.spec.rows,
            "the measure column must cover every event"
        );
        let mut scalar_instructions = 60; // parse/plan, incl. the predicate
        for (a, &(lo, hi)) in query.ranges.iter().enumerate() {
            let operands: Vec<&PimBitVec> = (lo..=hi)
                .map(|b| &self.bitmaps[a][usize::from(b)])
                .collect();
            scalar_instructions += 10 * operands.len() as u64;
            if operands.len() == 1 {
                sys.or_many(&[operands[0], operands[0]], &self.attr_scratch[a])?;
            } else {
                sys.or_many(&operands, &self.attr_scratch[a])?;
            }
        }

        // The predicate mask joins the AND chain like another attribute.
        let predicate = column.filter_ge(min_value, sys)?;
        let mut refs: Vec<&PimBitVec> = self.attr_scratch.iter().collect();
        refs.push(&predicate);
        let and_outcome = sys.bitwise(BitwiseOp::And, &refs, &self.final_scratch);
        // The mask is per-query scratch: return its row either way.
        sys.release_vecs(std::iter::once(&predicate));
        and_outcome?;

        let count = sys.count_ones(&self.final_scratch);
        scalar_instructions += 800 * count;
        Ok(QueryOutcome {
            count,
            scalar_instructions,
            scalar_bytes: self.spec.rows / 8 + 1100 * count,
        })
    }

    /// Scalar reference for [`Self::run_query_filtered`].
    ///
    /// # Panics
    ///
    /// Panics if `column` does not cover the table's rows.
    #[must_use]
    pub fn count_reference_filtered(
        &self,
        query: &Query,
        column: &ValueColumn,
        min_value: u64,
    ) -> u64 {
        assert_eq!(column.values().len() as u64, self.spec.rows);
        (0..self.spec.rows as usize)
            .filter(|&r| {
                column.values()[r] >= min_value
                    && query.ranges.iter().enumerate().all(|(a, &(lo, hi))| {
                        let bin = self.columns[a][r];
                        bin >= lo && bin <= hi
                    })
            })
            .count() as u64
    }

    /// Total index footprint in bytes (all bitmaps).
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.spec.rows / 8 * (self.spec.attributes * self.spec.bins) as u64
    }
}

/// A per-event integer measure column resident in PIM memory in
/// bit-transposed form, so predicates on it evaluate as bit-serial
/// µ-ops instead of streaming the values to the CPU.
#[derive(Debug)]
pub struct ValueColumn {
    values: Vec<u64>,
    planes: TransposedVec,
}

impl ValueColumn {
    /// Loads a measure column (setup, uncharged).
    ///
    /// # Errors
    ///
    /// Propagates allocation/store failures.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, `width_bits` is outside `1..=64`, or
    /// any value overflows the declared width.
    pub fn build(
        values: Vec<u64>,
        width_bits: u32,
        sys: &mut PimSystem,
    ) -> Result<Self, RuntimeError> {
        assert!(!values.is_empty(), "a measure column needs values");
        if width_bits < 64 {
            assert!(
                values.iter().all(|&v| v >> width_bits == 0),
                "values must fit the declared column width"
            );
        }
        let planes = sys.alloc_transposed(values.len() as u64, width_bits)?;
        if let Err(e) = sys.store_lanes(&planes, &values) {
            // Don't leak the placement group on a failed load.
            sys.release_vecs(planes.planes());
            return Err(e);
        }
        Ok(ValueColumn { values, planes })
    }

    /// A synthetic measure (e.g. event energy), clustered like real
    /// detector data.
    #[must_use]
    pub fn synthetic_values(rows: u64, width_bits: u32, seed: u64) -> Vec<u64> {
        let mut rng = SimRng::seed_from_u64(seed);
        let max = if width_bits >= 64 {
            u64::MAX
        } else {
            (1 << width_bits) - 1
        };
        (0..rows)
            .map(|_| {
                let a = rng.gen_range_u64(0, max / 2 + 1);
                let b = rng.gen_range_u64(0, max / 2 + 1);
                a + b // triangular, like the binned attributes
            })
            .collect()
    }

    /// The ground-truth values.
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The column's lane width in bits.
    #[must_use]
    pub fn width_bits(&self) -> u32 {
        self.planes.width_bits()
    }

    /// Computes the predicate mask `value >= min_value` with the
    /// bit-serial comparator, returning a freshly allocated mask.
    ///
    /// # Errors
    ///
    /// Propagates allocation/operation failures.
    pub fn filter_ge(
        &self,
        min_value: u64,
        sys: &mut PimSystem,
    ) -> Result<PimBitVec, RuntimeError> {
        let mask = sys.alloc(self.values.len() as u64)?;
        let program = MicroProgram::cmp_ge_const(&self.planes, min_value, &mask);
        match microcode::run(&[program], CompileOptions::default(), sys) {
            Ok(_) => Ok(mask),
            Err(e) => {
                sys.release_vecs(std::iter::once(&mask));
                Err(e)
            }
        }
    }
}

/// A conjunctive multi-attribute range query: per attribute, an inclusive
/// bin range `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// One `(lo, hi)` bin range per attribute.
    pub ranges: Vec<(u8, u8)>,
}

impl Query {
    /// A random query over `spec`'s attributes, with range widths drawn to
    /// mix selective and broad predicates.
    #[must_use]
    pub fn random(spec: &TableSpec, rng: &mut SimRng) -> Self {
        let ranges = (0..spec.attributes)
            .map(|_| {
                let lo = rng.gen_range_u64(0, spec.bins as u64) as u8;
                let width = rng
                    .gen_range_u64(0, u64::from(spec.bins as u8 - lo.min(spec.bins as u8 - 1)))
                    as u8;
                (lo, (lo + width).min(spec.bins as u8 - 1))
            })
            .collect();
        Query { ranges }
    }
}

/// What one query cost outside the bitwise trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Matching events.
    pub count: u64,
    /// Scalar instructions spent planning/aggregating.
    pub scalar_instructions: u64,
    /// Bytes the scalar part touched.
    pub scalar_bytes: u64,
}

/// Runs the full Fastbit workload: build the index, evaluate
/// `query_count` random queries, and account the work.
///
/// # Errors
///
/// Propagates index/query failures.
pub fn run_database_workload(
    query_count: usize,
    sys: &mut PimSystem,
) -> Result<AppRun, RuntimeError> {
    let spec = TableSpec::star_like();
    let index = BitmapIndex::build(spec, sys)?;
    let mut rng = SimRng::seed_from_u64(spec.seed ^ query_count as u64);

    // Measured region: the queries.
    sys.take_stats();
    let _ = sys.take_trace();
    let mut scalar_instructions = 0u64;
    let mut scalar_bytes = 0u64;
    for _ in 0..query_count {
        let query = Query::random(&spec, &mut rng);
        let outcome = index.run_query(&query, sys)?;
        scalar_instructions += outcome.scalar_instructions;
        scalar_bytes += outcome.scalar_bytes;
    }

    Ok(AppRun {
        name: query_count.to_string(),
        trace: sys.take_trace(),
        scalar_instructions,
        scalar_bytes,
        footprint_bytes: index.footprint_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_runtime::MappingPolicy;

    fn small_spec() -> TableSpec {
        TableSpec {
            rows: 4096,
            attributes: 3,
            bins: 8,
            seed: 42,
        }
    }

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    #[test]
    fn query_counts_match_reference() {
        let mut s = sys();
        let index = BitmapIndex::build(small_spec(), &mut s).expect("build");
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..20 {
            let q = Query::random(index.spec(), &mut rng);
            let got = index.run_query(&q, &mut s).expect("query").count;
            assert_eq!(got, index.count_reference(&q), "query {q:?}");
        }
    }

    #[test]
    fn full_range_query_matches_everything() {
        let mut s = sys();
        let index = BitmapIndex::build(small_spec(), &mut s).expect("build");
        let q = Query {
            ranges: vec![(0, 7); 3],
        };
        let got = index.run_query(&q, &mut s).expect("query").count;
        assert_eq!(got, 4096);
    }

    #[test]
    fn empty_range_intersection_matches_nothing() {
        let mut s = sys();
        let index = BitmapIndex::build(small_spec(), &mut s).expect("build");
        // The triangular distribution never reaches bin 0 and bin 7
        // simultaneously for the same event when ranges conflict across
        // attributes only rarely; force emptiness with ground truth.
        let q = Query {
            ranges: vec![(0, 0), (7, 7), (0, 7)],
        };
        let got = index.run_query(&q, &mut s).expect("query").count;
        assert_eq!(got, index.count_reference(&q));
    }

    #[test]
    fn workload_records_multi_row_ors() {
        let mut s = sys();
        let run = run_database_workload(10, &mut s).expect("workload");
        assert!(!run.trace.is_empty());
        assert!(
            run.trace
                .iter()
                .any(|o| o.op == BitwiseOp::Or && o.operand_count > 2),
            "range queries should issue multi-row ORs"
        );
        assert!(run.trace.iter().any(|o| o.op == BitwiseOp::And));
        assert!(run.scalar_instructions > 0);
    }

    #[test]
    fn filtered_query_counts_match_reference() {
        let mut s = sys();
        let spec = small_spec();
        let index = BitmapIndex::build(spec, &mut s).expect("build");
        let column = ValueColumn::build(
            ValueColumn::synthetic_values(spec.rows, 12, 0xC0),
            12,
            &mut s,
        )
        .expect("column");
        let free_before = s.allocator().free_rows();
        let mut rng = SimRng::seed_from_u64(11);
        for min_value in [0u64, 1, 500, 2048, 4000, 4095, 4096] {
            let q = Query::random(index.spec(), &mut rng);
            let got = index
                .run_query_filtered(&q, &column, min_value, &mut s)
                .expect("query")
                .count;
            assert_eq!(
                got,
                index.count_reference_filtered(&q, &column, min_value),
                "query {q:?} min {min_value}"
            );
        }
        // Predicate masks and comparator scratch are per-query: the free
        // pool must round-trip across the whole batch.
        assert_eq!(s.allocator().free_rows(), free_before);
    }

    #[test]
    fn pushdown_beats_unfiltered_scalar_cost() {
        let mut s = sys();
        let spec = small_spec();
        let index = BitmapIndex::build(spec, &mut s).expect("build");
        let column = ValueColumn::build(
            ValueColumn::synthetic_values(spec.rows, 12, 0xC1),
            12,
            &mut s,
        )
        .expect("column");
        let q = Query {
            ranges: vec![(0, 7); 3],
        };
        // A selective predicate leaves the PIM side with far fewer hits to
        // hand to the scalar aggregator than the unfiltered query.
        let base = index.run_query(&q, &mut s).expect("base");
        let pushed = index
            .run_query_filtered(&q, &column, 3500, &mut s)
            .expect("pushed");
        assert!(pushed.count < base.count);
        assert!(pushed.scalar_instructions < base.scalar_instructions);
    }

    #[test]
    fn query_generation_is_reproducible() {
        let spec = small_spec();
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(Query::random(&spec, &mut a), Query::random(&spec, &mut b));
        }
    }

    #[test]
    fn ranges_are_always_valid() {
        let spec = small_spec();
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..500 {
            let q = Query::random(&spec, &mut rng);
            for &(lo, hi) in &q.ranges {
                assert!(lo <= hi);
                assert!(usize::from(hi) < spec.bins);
            }
        }
    }
}
