//! The graph substrate: adjacency lists plus synthetic generators.
//!
//! Bitmap-based BFS (\[5\] in the paper) keeps frontier/visited/next as
//! bitmaps and advances with bulk bitwise operations; the graph itself is
//! stored as adjacency lists (CSR-style) so paper-scale vertex counts are
//! cheap. For small graphs the adjacency can also be viewed as per-vertex
//! bitmap rows ([`Graph::adjacency_bits`]), which the multi-row-OR BFS
//! variant in [`crate::bfs`] exploits.
//!
//! The paper evaluates on dblp-2010, eswiki-2013 and amazon-2008 from the
//! LAW collection; those are not redistributable here, so
//! [`GraphProfile`]s generate synthetic graphs with the matched
//! *connectivity character*: dblp-like graphs are dense with a short
//! diameter (big frontiers → bitwise-dominated BFS), eswiki/amazon-like
//! graphs are loose (small frontiers, many components → the traversal
//! spends its time "searching for an unvisited bit-vector", paper §6.2).

use pinatubo_core::rng::SimRng;
use std::collections::HashSet;

/// Connectivity profile of a synthetic graph.
///
/// Real link/co-purchase graphs are core–periphery structured: a modest
/// densely-connected core plus a large loose fringe. The profile captures
/// that with a periphery degree over all vertices and an extra dense core
/// over the first `core_fraction` of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphProfile {
    /// Name as it appears in the figures.
    pub name: &'static str,
    /// Vertex count.
    pub nodes: usize,
    /// Average (undirected) degree of the periphery edges, over all
    /// vertices.
    pub avg_degree: f64,
    /// Fraction of vertices forming the dense core (0 for none).
    pub core_fraction: f64,
    /// Average degree of the extra core-internal edges.
    pub core_degree: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GraphProfile {
    /// dblp-2010-like: a dense collaboration network — short diameter,
    /// large BFS frontiers everywhere.
    #[must_use]
    pub fn dblp() -> Self {
        GraphProfile {
            name: "dblp",
            nodes: 1 << 18,
            avg_degree: 12.0,
            core_fraction: 0.0,
            core_degree: 0.0,
            seed: 0xD81F,
        }
    }

    /// eswiki-2013-like: a small dense core inside a very loose fringe —
    /// small frontiers, many components.
    #[must_use]
    pub fn eswiki() -> Self {
        GraphProfile {
            name: "eswiki",
            nodes: 1 << 18,
            avg_degree: 0.6,
            core_fraction: 0.06,
            core_degree: 10.0,
            seed: 0xE5A1,
        }
    }

    /// amazon-2008-like: a loose co-purchase graph with a slightly larger
    /// core than eswiki.
    #[must_use]
    pub fn amazon() -> Self {
        GraphProfile {
            name: "amazon",
            nodes: 1 << 18,
            avg_degree: 0.8,
            core_fraction: 0.09,
            core_degree: 10.0,
            seed: 0xA3A2,
        }
    }

    /// The three paper datasets, in figure order.
    #[must_use]
    pub fn table1() -> Vec<GraphProfile> {
        vec![
            GraphProfile::dblp(),
            GraphProfile::eswiki(),
            GraphProfile::amazon(),
        ]
    }

    /// The same profile at a smaller vertex count (tests, examples).
    #[must_use]
    pub fn scaled(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }
}

/// An undirected graph stored as per-vertex adjacency lists.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    neighbors: Vec<Vec<u32>>,
    edges: u64,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a graph needs at least one vertex");
        Graph {
            n,
            neighbors: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Generates a core–periphery random graph matching `profile`:
    /// `n · d / 2` periphery edges over all vertices plus
    /// `core_n · d_core / 2` edges among the first `core_n` vertices.
    #[must_use]
    pub fn synthetic(profile: &GraphProfile) -> Self {
        let mut g = Graph::new(profile.nodes);
        let mut rng = SimRng::seed_from_u64(profile.seed);
        let mut seen: HashSet<(u32, u32)> = HashSet::new();

        let sample = |g: &mut Graph,
                      rng: &mut SimRng,
                      seen: &mut HashSet<(u32, u32)>,
                      pool: u32,
                      target: u64| {
            if pool < 2 {
                return;
            }
            let mut added = 0u64;
            let mut attempts = 0u64;
            while added < target && attempts < target * 20 {
                attempts += 1;
                let u = rng.gen_range_u64(0, u64::from(pool)) as u32;
                let v = rng.gen_range_u64(0, u64::from(pool)) as u32;
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    g.push_edge(u as usize, v as usize);
                    added += 1;
                }
            }
        };

        let periphery_target = (profile.nodes as f64 * profile.avg_degree / 2.0) as u64;
        sample(
            &mut g,
            &mut rng,
            &mut seen,
            profile.nodes as u32,
            periphery_target,
        );
        let core_n = (profile.nodes as f64 * profile.core_fraction) as u32;
        let core_target = (f64::from(core_n) * profile.core_degree / 2.0) as u64;
        sample(&mut g, &mut rng, &mut seen, core_n, core_target);
        g
    }

    /// A graph from an explicit edge list (self-loops and duplicates are
    /// ignored).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge (u, v), ignoring self-loops and
    /// duplicates. O(deg) duplicate check — use [`Graph::synthetic`] or
    /// [`Graph::from_edges`] for bulk construction.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge ({u}, {v}) out of range");
        if u == v || self.has_edge(u, v) {
            return;
        }
        self.push_edge(u, v);
    }

    /// Unchecked insert used by the bulk constructors.
    fn push_edge(&mut self, u: usize, v: usize) {
        self.neighbors[u].push(v as u32);
        self.neighbors[v].push(u as u32);
        self.edges += 1;
    }

    /// Vertex count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Undirected edge count.
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Whether the edge (u, v) exists (O(deg u)).
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors[u].contains(&(v as u32))
    }

    /// Degree of `v`.
    #[must_use]
    pub fn degree(&self, v: usize) -> u64 {
        self.neighbors[v].len() as u64
    }

    /// Neighbors of `v`.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[v]
    }

    /// The adjacency bitmap of `v` as booleans (one per vertex) — the
    /// per-vertex bitmap-row view used by the multi-row-OR BFS variant on
    /// small graphs.
    #[must_use]
    pub fn adjacency_bits(&self, v: usize) -> Vec<bool> {
        let mut bits = vec![false; self.n];
        for &u in &self.neighbors[v] {
            bits[u as usize] = true;
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_symmetric_and_counted_once() {
        let mut g = Graph::new(8);
        g.add_edge(1, 5);
        g.add_edge(5, 1); // duplicate
        g.add_edge(3, 3); // self-loop
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 5) && g.has_edge(5, 1));
        assert!(!g.has_edge(3, 3));
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.neighbors(5), &[1]);
    }

    #[test]
    fn adjacency_bits_match_has_edge() {
        let g = Graph::from_edges(70, &[(0, 65), (0, 3)]);
        let bits = g.adjacency_bits(0);
        assert!(bits[65] && bits[3]);
        assert_eq!(bits.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn synthetic_degree_is_near_target() {
        let g = Graph::synthetic(&GraphProfile::dblp().scaled(4096));
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            (avg - 12.0).abs() < 2.0,
            "average degree {avg} should be near the profile's 12"
        );
    }

    #[test]
    fn synthetic_is_reproducible() {
        let a = Graph::synthetic(&GraphProfile::amazon().scaled(1024));
        let b = Graph::synthetic(&GraphProfile::amazon().scaled(1024));
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.adjacency_bits(17), b.adjacency_bits(17));
    }

    #[test]
    fn profiles_span_dense_and_loose() {
        let dblp = Graph::synthetic(&GraphProfile::dblp().scaled(2048));
        let eswiki = Graph::synthetic(&GraphProfile::eswiki().scaled(2048));
        assert!(dblp.edge_count() > 4 * eswiki.edge_count());
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_graph_is_rejected() {
        let _ = Graph::new(0);
    }
}
