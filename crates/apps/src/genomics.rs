//! K-mer set operations — the paper's §3 motivates bulk bitwise
//! operations with bioinformatics \[21\]; this module builds that workload.
//!
//! Each DNA sample is summarized as an exact k-mer *presence bitmap*:
//! bit `i` is set when the k-mer whose 2-bit encoding equals `i` occurs in
//! the sample (for k = 8 the universe is 4^8 = 65 536 k-mers — one row).
//! Comparative genomics then reduces to bulk bitwise operations over
//! co-located bitmaps:
//!
//! * **core genome** of a cohort — AND over all sample bitmaps (a chained
//!   2-row AND in hardware);
//! * **pan genome** — one multi-row OR over all samples;
//! * **distinctive k-mers** of a sample — `sample AND NOT pan(others)`;
//! * **Jaccard similarity** — popcounts of intersection and union.

use crate::AppRun;
use pinatubo_core::rng::SimRng;
use pinatubo_core::BitwiseOp;
use pinatubo_runtime::{PimBitVec, PimSystem, RuntimeError};

/// Nucleotide alphabet used by the synthetic generator.
const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// 2-bit encoding of one base.
fn encode_base(base: u8) -> Option<u64> {
    match base {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// Exact k-mer presence bitmap of a sequence (universe 4^k bits).
///
/// # Panics
///
/// Panics if `k` is 0 or greater than 12 (the exact-universe
/// representation is meant for small k; 4^12 bits = 2 MiB is the ceiling).
#[must_use]
pub fn kmer_presence_bits(sequence: &[u8], k: usize) -> Vec<bool> {
    assert!((1..=12).contains(&k), "k must be in 1..=12, got {k}");
    let universe = 1usize << (2 * k);
    let mask = (universe - 1) as u64;
    let mut bits = vec![false; universe];
    let mut current = 0u64;
    let mut valid = 0usize;
    for &base in sequence {
        match encode_base(base) {
            Some(code) => {
                current = (current << 2 | code) & mask;
                valid += 1;
                if valid >= k {
                    bits[current as usize] = true;
                }
            }
            None => valid = 0, // ambiguous base breaks the window
        }
    }
    bits
}

/// A cohort of samples resident in PIM memory as k-mer bitmaps.
#[derive(Debug)]
pub struct KmerCohort {
    k: usize,
    names: Vec<String>,
    sequences: Vec<Vec<u8>>,
    bitmaps: Vec<PimBitVec>,
    /// Reusable scratch co-located with the bitmaps.
    scratch: Vec<PimBitVec>,
}

impl KmerCohort {
    /// Loads sequences as k-mer bitmaps (setup, uncharged).
    ///
    /// # Errors
    ///
    /// Propagates allocation/store failures.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `k` is out of range.
    pub fn load(
        samples: Vec<(String, Vec<u8>)>,
        k: usize,
        sys: &mut PimSystem,
    ) -> Result<Self, RuntimeError> {
        assert!(!samples.is_empty(), "a cohort needs at least one sample");
        let universe = 1u64 << (2 * k);
        let mut group = sys.alloc_group(samples.len() + 3, universe)?;
        let scratch = group.split_off(samples.len());
        let mut names = Vec::with_capacity(samples.len());
        let mut sequences = Vec::with_capacity(samples.len());
        for ((name, sequence), bitmap) in samples.into_iter().zip(&group) {
            if let Err(e) = sys.store(bitmap, &kmer_presence_bits(&sequence, k)) {
                // A failed store must not leak the placement group.
                sys.release_vecs(group.iter().chain(&scratch));
                return Err(e);
            }
            names.push(name);
            sequences.push(sequence);
        }
        Ok(KmerCohort {
            k,
            names,
            sequences,
            bitmaps: group,
            scratch,
        })
    }

    /// Synthetic cohort: a random ancestor genome plus `samples − 1`
    /// mutated descendants (per-base substitution rate `mutation_rate`),
    /// so related samples share most of their k-mers.
    #[must_use]
    pub fn synthetic_samples(
        samples: usize,
        genome_len: usize,
        mutation_rate: f64,
        seed: u64,
    ) -> Vec<(String, Vec<u8>)> {
        let mut rng = SimRng::seed_from_u64(seed);
        let ancestor: Vec<u8> = (0..genome_len).map(|_| BASES[rng.gen_index(4)]).collect();
        let mut out = vec![("s0".to_owned(), ancestor.clone())];
        for i in 1..samples {
            let descendant: Vec<u8> = ancestor
                .iter()
                .map(|&b| {
                    if rng.gen_bool(mutation_rate) {
                        BASES[rng.gen_index(4)]
                    } else {
                        b
                    }
                })
                .collect();
            out.push((format!("s{i}"), descendant));
        }
        out
    }

    /// Sample count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bitmaps.len()
    }

    /// Whether the cohort is empty (never true — `load` requires samples).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bitmaps.is_empty()
    }

    /// Sample names.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// k-mer universe size in bits.
    #[must_use]
    pub fn universe_bits(&self) -> u64 {
        1 << (2 * self.k)
    }

    /// Core genome: k-mers present in *every* sample (chained AND),
    /// returned as a popcount.
    ///
    /// # Errors
    ///
    /// Propagates operation failures.
    pub fn core_kmer_count(&self, sys: &mut PimSystem) -> Result<u64, RuntimeError> {
        let refs: Vec<&PimBitVec> = self.bitmaps.iter().collect();
        let acc = &self.scratch[0];
        if refs.len() == 1 {
            sys.bitwise(BitwiseOp::And, &[refs[0], refs[0]], acc)?;
        } else {
            sys.bitwise(BitwiseOp::And, &refs, acc)?;
        }
        Ok(sys.count_ones(acc))
    }

    /// Pan genome: k-mers present in *any* sample (one multi-row OR),
    /// returned as a popcount.
    ///
    /// # Errors
    ///
    /// Propagates operation failures.
    pub fn pan_kmer_count(&self, sys: &mut PimSystem) -> Result<u64, RuntimeError> {
        let refs: Vec<&PimBitVec> = self.bitmaps.iter().collect();
        let acc = &self.scratch[0];
        if refs.len() == 1 {
            sys.or_many(&[refs[0], refs[0]], acc)?;
        } else {
            sys.or_many(&refs, acc)?;
        }
        Ok(sys.count_ones(acc))
    }

    /// K-mers unique to sample `idx` (present there, absent everywhere
    /// else): `sample AND NOT (OR of the others)`.
    ///
    /// # Errors
    ///
    /// Propagates operation failures.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the cohort has a single sample.
    pub fn distinctive_kmer_count(
        &self,
        idx: usize,
        sys: &mut PimSystem,
    ) -> Result<u64, RuntimeError> {
        assert!(idx < self.len(), "sample {idx} out of range");
        assert!(self.len() > 1, "distinctiveness needs at least two samples");
        let others: Vec<&PimBitVec> = self
            .bitmaps
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, b)| b)
            .collect();
        let union = &self.scratch[0];
        if others.len() == 1 {
            sys.or_many(&[others[0], others[0]], union)?;
        } else {
            sys.or_many(&others, union)?;
        }
        let not_union = &self.scratch[1];
        sys.not(union, not_union)?;
        let unique = &self.scratch[2];
        sys.bitwise(BitwiseOp::And, &[&self.bitmaps[idx], not_union], unique)?;
        Ok(sys.count_ones(unique))
    }

    /// Jaccard similarity `|A∩B| / |A∪B|` between two samples.
    ///
    /// # Errors
    ///
    /// Propagates operation failures.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn jaccard(&self, a: usize, b: usize, sys: &mut PimSystem) -> Result<f64, RuntimeError> {
        assert!(
            a < self.len() && b < self.len(),
            "sample index out of range"
        );
        let (va, vb) = (&self.bitmaps[a], &self.bitmaps[b]);
        let inter = &self.scratch[0];
        sys.bitwise(BitwiseOp::And, &[va, vb], inter)?;
        let intersection = sys.count_ones(inter);
        let uni = &self.scratch[1];
        sys.or_many(&[va, vb], uni)?;
        let union = sys.count_ones(uni);
        Ok(if union == 0 {
            1.0
        } else {
            intersection as f64 / union as f64
        })
    }

    /// Scalar reference: the k-mer set of sample `idx` as a bit vector.
    #[must_use]
    pub fn reference_bits(&self, idx: usize) -> Vec<bool> {
        kmer_presence_bits(&self.sequences[idx], self.k)
    }
}

/// Runs the genomics workload: pan/core analysis, all-pairs Jaccard and
/// per-sample distinctiveness over a synthetic cohort.
///
/// # Errors
///
/// Propagates operation failures.
pub fn run_genomics_workload(
    samples: usize,
    genome_len: usize,
    sys: &mut PimSystem,
) -> Result<AppRun, RuntimeError> {
    let cohort = KmerCohort::load(
        KmerCohort::synthetic_samples(samples, genome_len, 0.01, 0x6E40),
        8,
        sys,
    )?;
    sys.take_stats();
    let _ = sys.take_trace();
    let mut scalar_instructions = 0u64;
    let mut scalar_bytes = 0u64;

    let pan = cohort.pan_kmer_count(sys)?;
    let core = cohort.core_kmer_count(sys)?;
    scalar_instructions += 2 * cohort.universe_bits() / 16;
    for a in 0..cohort.len() {
        for b in (a + 1)..cohort.len() {
            let _ = cohort.jaccard(a, b, sys)?;
            scalar_instructions += cohort.universe_bits() / 16;
            scalar_bytes += cohort.universe_bits() / 8;
        }
        let _ = cohort.distinctive_kmer_count(a, sys)?;
    }
    debug_assert!(core <= pan);

    Ok(AppRun {
        name: format!("genomics-{samples}x{genome_len}"),
        trace: sys.take_trace(),
        scalar_instructions,
        scalar_bytes,
        footprint_bytes: cohort.len() as u64 * cohort.universe_bits() / 8
            + genome_len as u64 * samples as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_runtime::MappingPolicy;
    use std::collections::HashSet;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    /// Scalar k-mer set of a sequence.
    fn kmer_set(sequence: &[u8], k: usize) -> HashSet<usize> {
        kmer_presence_bits(sequence, k)
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn presence_bits_match_hand_computed_kmers() {
        // "ACGT" with k=2: AC=0b0001, CG=0b0110, GT=0b1011.
        let bits = kmer_presence_bits(b"ACGT", 2);
        let set: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(set, vec![0b0001, 0b0110, 0b1011]);
    }

    #[test]
    fn ambiguous_bases_break_the_window() {
        let with_n = kmer_presence_bits(b"ACNGT", 2);
        let set: Vec<usize> = with_n
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        // Only AC (before the N) and GT (after) survive; CG spans the N.
        assert_eq!(set, vec![0b0001, 0b1011]);
    }

    fn small_cohort(sys: &mut PimSystem) -> KmerCohort {
        KmerCohort::load(KmerCohort::synthetic_samples(4, 3000, 0.02, 77), 6, sys)
            .expect("cohort loads")
    }

    #[test]
    fn pan_and_core_match_scalar_sets() {
        let mut s = sys();
        let cohort = small_cohort(&mut s);
        let sets: Vec<HashSet<usize>> = (0..cohort.len())
            .map(|i| kmer_set(&cohort.sequences[i], cohort.k))
            .collect();
        let pan_ref = sets.iter().fold(HashSet::new(), |acc, s| &acc | s).len() as u64;
        let core_ref = sets
            .iter()
            .skip(1)
            .fold(sets[0].clone(), |acc, s| &acc & s)
            .len() as u64;
        assert_eq!(cohort.pan_kmer_count(&mut s).expect("pan"), pan_ref);
        assert_eq!(cohort.core_kmer_count(&mut s).expect("core"), core_ref);
    }

    #[test]
    fn jaccard_matches_scalar_and_orders_by_relatedness() {
        let mut s = sys();
        // Two close samples (low mutation) + one distant (re-mutated).
        let mut samples = KmerCohort::synthetic_samples(2, 3000, 0.005, 3);
        samples.extend(KmerCohort::synthetic_samples(1, 3000, 0.0, 999));
        let cohort = KmerCohort::load(samples, 6, &mut s).expect("loads");

        let j01 = cohort.jaccard(0, 1, &mut s).expect("j01");
        let j02 = cohort.jaccard(0, 2, &mut s).expect("j02");
        // Scalar check.
        let sa = kmer_set(&cohort.sequences[0], 6);
        let sb = kmer_set(&cohort.sequences[1], 6);
        let expect = sa.intersection(&sb).count() as f64 / sa.union(&sb).count() as f64;
        assert!((j01 - expect).abs() < 1e-12);
        // Related pair is more similar than the unrelated one.
        assert!(j01 > j02 + 0.2, "j01={j01}, j02={j02}");
    }

    #[test]
    fn distinctive_kmers_match_scalar() {
        let mut s = sys();
        let cohort = small_cohort(&mut s);
        let sets: Vec<HashSet<usize>> = (0..cohort.len())
            .map(|i| kmer_set(&cohort.sequences[i], cohort.k))
            .collect();
        for idx in 0..cohort.len() {
            let others = sets
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != idx)
                .fold(HashSet::new(), |acc, (_, s)| &acc | s);
            let expect = sets[idx].difference(&others).count() as u64;
            assert_eq!(
                cohort.distinctive_kmer_count(idx, &mut s).expect("unique"),
                expect,
                "sample {idx}"
            );
        }
    }

    #[test]
    fn workload_issues_multi_row_ors() {
        let mut s = sys();
        let run = run_genomics_workload(6, 2000, &mut s).expect("workload");
        assert!(run
            .trace
            .iter()
            .any(|o| o.op == BitwiseOp::Or && o.operand_count >= 6));
        assert!(run.trace.iter().any(|o| o.op == BitwiseOp::And));
        assert!(run.trace.iter().any(|o| o.op == BitwiseOp::Not));
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=12")]
    fn oversized_k_is_rejected() {
        let _ = kmer_presence_bits(b"ACGT", 13);
    }
}
